// Package quant implements the DNN model optimizations from Section 3.1
// of the paper: magnitude-based weight pruning and per-layer k-means
// weight clustering (4-7 bit cluster indices), plus a fixed-point
// quantization baseline the paper compares against.
//
// The output of this package — per-layer cluster index streams with small
// lookup tables — is the input to the sparse encoders (internal/sparse)
// and fault-injection pipeline (internal/ares).
package quant

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// Prune zeroes the smallest-magnitude weights of w in place until the
// target fraction of zeros is reached (counting pre-existing zeros). For
// layers above exactLimit values the threshold is estimated from a
// deterministic sample, so achieved sparsity may deviate by a fraction of
// a percent; below the limit it is exact.
func Prune(w *tensor.Matrix, sparsity float64, seed uint64) {
	if sparsity <= 0 {
		return
	}
	if sparsity >= 1 {
		w.Fill(0)
		return
	}
	n := len(w.Data)
	if n == 0 {
		return
	}
	const exactLimit = 1 << 21 // 2M values: full sort is still fast
	if n <= exactLimit {
		mags := make([]float64, n)
		for i, v := range w.Data {
			mags[i] = math.Abs(float64(v))
		}
		sort.Float64s(mags)
		k := int(sparsity * float64(n))
		if k <= 0 {
			return
		}
		if k >= n {
			k = n - 1
		}
		thr := mags[k]
		zeroBelow(w.Data, thr, k)
		return
	}
	// Sampled threshold for very large layers.
	src := stats.NewSource(seed)
	const sample = 1 << 18
	mags := make([]float64, sample)
	for i := range mags {
		mags[i] = math.Abs(float64(w.Data[src.Intn(n)]))
	}
	sort.Float64s(mags)
	thr := mags[int(sparsity*float64(sample))]
	for i, v := range w.Data {
		if math.Abs(float64(v)) < thr {
			w.Data[i] = 0
		}
	}
}

// zeroBelow zeroes values with |v| < thr, and then, to hit the exact
// count k, zeroes values equal in magnitude to thr until k zeros exist.
func zeroBelow(data []float32, thr float64, k int) {
	zeros := 0
	for i, v := range data {
		if math.Abs(float64(v)) < thr {
			data[i] = 0
			zeros++
		}
	}
	if zeros >= k {
		return
	}
	for i, v := range data {
		if zeros >= k {
			break
		}
		if v != 0 && math.Abs(float64(v)) == thr {
			data[i] = 0
			zeros++
		}
	}
}

// Clustered is a layer's weights in pruned + clustered (P+C) form: every
// weight is an IndexBits-wide cluster index into the Centroids lookup
// table. Index 0 is reserved for the exact value 0 so that pruning-induced
// sparsity survives clustering (the property the sparse encoders exploit).
type Clustered struct {
	Rows, Cols int
	IndexBits  int
	// Centroids has 1<<IndexBits entries; Centroids[0] == 0.
	Centroids []float32
	// Indices holds one cluster index per weight, row-major.
	Indices []uint8
}

// ClusterOptions tunes Cluster.
type ClusterOptions struct {
	// SampleLimit bounds the number of non-zero weights fed to k-means;
	// above it, a deterministic subsample is clustered and all weights are
	// assigned to the resulting centroids. Zero means 1<<17.
	SampleLimit int
	// MaxIter bounds Lloyd iterations (default 40).
	MaxIter int
	// Seed drives subsampling.
	Seed uint64
}

// Cluster quantizes a weight matrix to 1<<bits shared values: centroid 0
// is pinned to zero, the remaining (1<<bits)-1 centroids come from k-means
// over the non-zero weights.
func Cluster(w *tensor.Matrix, bits int, opt ClusterOptions) *Clustered {
	if bits < 1 || bits > 16 {
		panic(fmt.Sprintf("quant: Cluster bits %d out of range [1,16]", bits))
	}
	if opt.SampleLimit == 0 {
		opt.SampleLimit = 1 << 17
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 40
	}
	k := (1 << bits) - 1 // non-zero clusters
	c := &Clustered{
		Rows: w.Rows, Cols: w.Cols, IndexBits: bits,
		Centroids: make([]float32, 1<<bits),
		Indices:   make([]uint8, len(w.Data)),
	}

	// Collect non-zero weights (sampled if huge).
	var nz []float64
	nnzTotal := 0
	for _, v := range w.Data {
		if v != 0 {
			nnzTotal++
		}
	}
	if nnzTotal == 0 {
		return c
	}
	if nnzTotal <= opt.SampleLimit {
		nz = make([]float64, 0, nnzTotal)
		for _, v := range w.Data {
			if v != 0 {
				nz = append(nz, float64(v))
			}
		}
	} else {
		src := stats.NewSource(opt.Seed)
		nz = make([]float64, 0, opt.SampleLimit)
		for len(nz) < opt.SampleLimit {
			v := w.Data[src.Intn(len(w.Data))]
			if v != 0 {
				nz = append(nz, float64(v))
			}
		}
	}

	km := stats.KMeans1D(nz, k, opt.MaxIter)
	for i := 0; i < k; i++ {
		c.Centroids[i+1] = float32(km.Centroids[i])
	}
	// Assign every weight: zeros to index 0, others to nearest centroid.
	for i, v := range w.Data {
		if v == 0 {
			c.Indices[i] = 0
			continue
		}
		c.Indices[i] = uint8(stats.NearestIndex(km.Centroids, float64(v))) + 1
	}
	return c
}

// NNZ returns the number of non-zero (index != 0) weights.
func (c *Clustered) NNZ() int {
	n := 0
	for _, idx := range c.Indices {
		if idx != 0 {
			n++
		}
	}
	return n
}

// Sparsity returns the fraction of zero-index weights.
func (c *Clustered) Sparsity() float64 {
	if len(c.Indices) == 0 {
		return 0
	}
	return 1 - float64(c.NNZ())/float64(len(c.Indices))
}

// Value returns the weight value for cluster index idx.
func (c *Clustered) Value(idx uint8) float32 { return c.Centroids[idx] }

// Decode reconstructs the full weight matrix.
func (c *Clustered) Decode() *tensor.Matrix {
	out := tensor.NewMatrix(c.Rows, c.Cols)
	c.Apply(out)
	return out
}

// Apply writes the reconstructed weights into dst (same shape).
func (c *Clustered) Apply(dst *tensor.Matrix) {
	if dst.Rows != c.Rows || dst.Cols != c.Cols {
		panic("quant: Apply shape mismatch")
	}
	for i, idx := range c.Indices {
		dst.Data[i] = c.Centroids[idx]
	}
}

// RawBits returns the storage cost of the P+C representation in bits:
// one index per weight plus the lookup table (float16 per centroid, as
// the paper's 16-bit baseline datatype).
func (c *Clustered) RawBits() int64 {
	return int64(len(c.Indices))*int64(c.IndexBits) + int64(len(c.Centroids))*16
}

// QuantError returns the root-mean-square reconstruction error versus the
// original weights.
func (c *Clustered) QuantError(orig *tensor.Matrix) float64 {
	if len(orig.Data) != len(c.Indices) {
		panic("quant: QuantError shape mismatch")
	}
	var ss float64
	for i, idx := range c.Indices {
		d := float64(orig.Data[i] - c.Centroids[idx])
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(c.Indices)))
}

// FixedPoint quantizes w in place to a signed fixed-point format with the
// given total bits (1 sign bit, intBits integer bits, remaining fraction
// bits). It is the baseline bit-reduction technique the paper compares
// clustering against (Section 3.1.2); clustering strictly wins on bits
// per weight for the evaluated models.
func FixedPoint(w *tensor.Matrix, totalBits, intBits int) {
	if totalBits < 2 || intBits < 0 || intBits > totalBits-1 {
		panic("quant: invalid fixed-point format")
	}
	fracBits := totalBits - 1 - intBits
	scale := math.Pow(2, float64(fracBits))
	maxQ := math.Pow(2, float64(totalBits-1)) - 1
	for i, v := range w.Data {
		q := math.Round(float64(v) * scale)
		if q > maxQ {
			q = maxQ
		}
		if q < -maxQ-1 {
			q = -maxQ - 1
		}
		w.Data[i] = float32(q / scale)
	}
}

// FixedPointBitsRequired returns the minimum total bit width (including
// sign) such that fixed-point quantization keeps RMS error under
// rmsTarget, scanning widths 2..16. Returns 17 if none suffice.
func FixedPointBitsRequired(w *tensor.Matrix, rmsTarget float64) int {
	// Choose integer bits from the dynamic range.
	var maxAbs float64
	for _, v := range w.Data {
		if a := math.Abs(float64(v)); a > maxAbs {
			maxAbs = a
		}
	}
	intBits := 0
	for math.Pow(2, float64(intBits)) < maxAbs {
		intBits++
	}
	for bits := 2; bits <= 16; bits++ {
		if bits-1 < intBits {
			continue
		}
		q := w.Clone()
		FixedPoint(q, bits, intBits)
		var ss float64
		for i := range q.Data {
			d := float64(q.Data[i] - w.Data[i])
			ss += d * d
		}
		rms := math.Sqrt(ss / float64(len(w.Data)))
		if rms <= rmsTarget {
			return bits
		}
	}
	return 17
}
