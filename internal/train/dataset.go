// Package train provides the training substrate MaxNVM uses to obtain
// *measured* (rather than assumed) DNN classification error under fault
// injection: a procedurally generated MNIST-like dataset, an SGD trainer
// with full backpropagation for sequential convnets, and accuracy
// evaluation helpers.
//
// The paper trains LeNet5/VGG/ResNet on MNIST/CIFAR/ImageNet; those
// datasets and trainings are outside this repository's scope (see
// DESIGN.md substitutions), so we synthesize a classification task with
// the same structure — 10 classes of spatially structured images with
// intra-class variation — that a small convnet learns to high accuracy.
// Fault-injection experiments then observe real accuracy degradation.
package train

import (
	"math"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// Dataset is a labelled image classification dataset.
type Dataset struct {
	Images  *tensor.Tensor4
	Labels  []int
	Classes int
}

// N returns the number of samples.
func (d *Dataset) N() int { return d.Images.N }

// SynthConfig parameterizes synthetic dataset generation.
type SynthConfig struct {
	// N is the number of samples to generate.
	N int
	// H, W are the image dimensions (single channel).
	H, W int
	// Classes is the number of classes (prototypes).
	Classes int
	// Jitter is the maximum absolute translation (pixels) applied per
	// sample.
	Jitter int
	// Noise is the standard deviation of additive pixel noise.
	Noise float64
	// Seed drives all randomness. The class prototypes depend only on
	// Seed, H, W and Classes, so train and test splits built with
	// different seeds share prototypes when given the same ProtoSeed.
	Seed uint64
	// ProtoSeed seeds prototype generation; defaults to Seed when zero.
	ProtoSeed uint64
}

func (c SynthConfig) withDefaults() SynthConfig {
	if c.H == 0 {
		c.H = 12
	}
	if c.W == 0 {
		c.W = 12
	}
	if c.Classes == 0 {
		c.Classes = 10
	}
	if c.Jitter == 0 {
		c.Jitter = 1
	}
	if c.Noise == 0 {
		c.Noise = 0.15
	}
	if c.ProtoSeed == 0 {
		c.ProtoSeed = c.Seed ^ 0xabcdef
	}
	return c
}

// Synthesize generates a dataset per cfg. Each class has a prototype
// image composed of class-specific Gaussian blobs; samples are jittered,
// amplitude-scaled, and noised copies of their class prototype.
func Synthesize(cfg SynthConfig) *Dataset {
	cfg = cfg.withDefaults()
	protos := prototypes(cfg)
	src := stats.NewSource(cfg.Seed)
	ds := &Dataset{
		Images:  tensor.NewTensor4(cfg.N, 1, cfg.H, cfg.W),
		Labels:  make([]int, cfg.N),
		Classes: cfg.Classes,
	}
	for i := 0; i < cfg.N; i++ {
		class := i % cfg.Classes // balanced classes
		ds.Labels[i] = class
		img := ds.Images.Image(i)
		dy := src.Intn(2*cfg.Jitter+1) - cfg.Jitter
		dx := src.Intn(2*cfg.Jitter+1) - cfg.Jitter
		amp := float32(0.8 + 0.4*src.Float64())
		proto := protos[class]
		for y := 0; y < cfg.H; y++ {
			sy := y + dy
			for x := 0; x < cfg.W; x++ {
				sx := x + dx
				var v float32
				if sy >= 0 && sy < cfg.H && sx >= 0 && sx < cfg.W {
					v = proto[sy*cfg.W+sx]
				}
				v = amp*v + float32(src.Gaussian(0, cfg.Noise))
				img[y*cfg.W+x] = v
			}
		}
	}
	return ds
}

// prototypes builds one blob-composite image per class, deterministic in
// ProtoSeed.
func prototypes(cfg SynthConfig) [][]float32 {
	src := stats.NewSource(cfg.ProtoSeed)
	out := make([][]float32, cfg.Classes)
	for c := range out {
		cs := src.Fork(uint64(c) + 1)
		img := make([]float32, cfg.H*cfg.W)
		blobs := 3 + cs.Intn(3)
		for b := 0; b < blobs; b++ {
			cy := cs.Float64() * float64(cfg.H-1)
			cx := cs.Float64() * float64(cfg.W-1)
			sigma := 0.8 + cs.Float64()*1.5
			sign := 1.0
			if cs.Bernoulli(0.3) {
				sign = -1
			}
			for y := 0; y < cfg.H; y++ {
				for x := 0; x < cfg.W; x++ {
					d2 := (float64(y)-cy)*(float64(y)-cy) + (float64(x)-cx)*(float64(x)-cx)
					img[y*cfg.W+x] += float32(sign * math.Exp(-d2/(2*sigma*sigma)))
				}
			}
		}
		out[c] = img
	}
	return out
}

// Batch copies samples [lo, hi) into a fresh tensor and label slice.
func (d *Dataset) Batch(idx []int) (*tensor.Tensor4, []int) {
	n := len(idx)
	imgSz := d.Images.C * d.Images.H * d.Images.W
	out := tensor.NewTensor4(n, d.Images.C, d.Images.H, d.Images.W)
	labels := make([]int, n)
	for i, j := range idx {
		copy(out.Data[i*imgSz:(i+1)*imgSz], d.Images.Image(j))
		labels[i] = d.Labels[j]
	}
	return out, labels
}

// Split returns views-by-copy of the first n and remaining samples.
func (d *Dataset) Split(n int) (*Dataset, *Dataset) {
	if n < 0 || n > d.N() {
		panic("train: Split size out of range")
	}
	first := make([]int, n)
	for i := range first {
		first[i] = i
	}
	rest := make([]int, d.N()-n)
	for i := range rest {
		rest[i] = n + i
	}
	aImg, aLab := d.Batch(first)
	bImg, bLab := d.Batch(rest)
	return &Dataset{Images: aImg, Labels: aLab, Classes: d.Classes},
		&Dataset{Images: bImg, Labels: bLab, Classes: d.Classes}
}
