package train

import (
	"repro/internal/dnn"
	"repro/internal/stats"
)

// ITNResult is the outcome of an iso-training-noise measurement
// (paper Section 3.1.1): the spread of final test error across repeated
// trainings with identical hyperparameters but different shuffling and
// initialization randomness.
type ITNResult struct {
	// Errors holds the final test error of each run.
	Errors []float64
	// MeanErr is the mean final error (the accuracy baseline).
	MeanErr float64
	// Bound is the iso-training-noise bound: one sample standard
	// deviation of the final errors. Model alterations whose error
	// increase stays below this bound are indistinguishable from
	// training noise and therefore iso-accurate.
	Bound float64
}

// MeasureITN trains `runs` independent instances of the model produced
// by build, each with identical hyperparameters but a distinct seed, and
// derives the iso-training-noise bound from the spread of their final
// test errors.
func MeasureITN(build func() *dnn.Model, trainDS, testDS *Dataset, cfg Config, runs int) (ITNResult, error) {
	if runs < 2 {
		runs = 2
	}
	var res ITNResult
	for r := 0; r < runs; r++ {
		m := build()
		m.InitWeights(cfg.Seed + uint64(r)*1009 + 1)
		runCfg := cfg
		runCfg.Seed = cfg.Seed + uint64(r)*31
		if _, err := Train(m, trainDS, runCfg); err != nil {
			return ITNResult{}, err
		}
		res.Errors = append(res.Errors, Error(m, testDS))
	}
	s := stats.Summarize(res.Errors)
	res.MeanErr = s.Mean
	res.Bound = s.Std
	return res, nil
}
