package train

import (
	"testing"

	"repro/internal/dnn"
)

func TestMeasureITN(t *testing.T) {
	trainDS := Synthesize(SynthConfig{N: 400, Seed: 50, ProtoSeed: 77})
	testDS := Synthesize(SynthConfig{N: 200, Seed: 51, ProtoSeed: 77})
	res, err := MeasureITN(dnn.TinyCNN, trainDS, testDS, Config{Epochs: 4, Seed: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 4 {
		t.Fatalf("runs = %d", len(res.Errors))
	}
	// All runs must have learned the task.
	for i, e := range res.Errors {
		if e > 0.3 {
			t.Errorf("run %d error %.3f: failed to learn", i, e)
		}
	}
	// The bound is positive (runs differ) but small relative to the mean
	// error headroom — the property the paper's criterion rests on.
	if res.Bound <= 0 {
		t.Error("ITN bound should be positive: independent runs never land identically")
	}
	if res.Bound > 0.1 {
		t.Errorf("ITN bound %.4f implausibly large", res.Bound)
	}
	if res.MeanErr <= 0 {
		t.Error("mean error should be positive on a held-out set")
	}
}

func TestMeasureITNMinimumRuns(t *testing.T) {
	trainDS := Synthesize(SynthConfig{N: 100, Seed: 60, ProtoSeed: 77})
	testDS := Synthesize(SynthConfig{N: 50, Seed: 61, ProtoSeed: 77})
	res, err := MeasureITN(dnn.TinyCNN, trainDS, testDS, Config{Epochs: 1, Seed: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 2 {
		t.Errorf("runs clamped to %d, want 2", len(res.Errors))
	}
}
