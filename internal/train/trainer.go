package train

import (
	"fmt"
	"math"

	"repro/internal/dnn"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Config holds SGD hyperparameters.
type Config struct {
	Epochs       int
	BatchSize    int
	LearningRate float64
	Momentum     float64
	WeightDecay  float64
	Seed         uint64
	// Verbose enables per-epoch logging via the Log callback.
	Log func(epoch int, loss, acc float64)
}

func (c Config) withDefaults() Config {
	if c.Epochs == 0 {
		c.Epochs = 5
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.05
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	return c
}

// Train runs minibatch SGD with momentum on a *sequential* model (no Add
// layers; every layer consumes the previous layer's output). The model
// must be materialized. Returns the final training loss.
func Train(m *dnn.Model, ds *Dataset, cfg Config) (float64, error) {
	cfg = cfg.withDefaults()
	if !m.Materialized() {
		return 0, fmt.Errorf("train: model %q is not materialized", m.Name)
	}
	for _, l := range m.Layers {
		if l.Kind == dnn.Add || (l.Input != -1) {
			return 0, fmt.Errorf("train: layer %q: only sequential models are trainable", l.Name)
		}
	}
	src := stats.NewSource(cfg.Seed)
	vel := newVelocity(m)
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := src.Perm(ds.N())
		var epochLoss float64
		batches := 0
		for lo := 0; lo+cfg.BatchSize <= ds.N(); lo += cfg.BatchSize {
			idx := perm[lo : lo+cfg.BatchSize]
			x, labels := ds.Batch(idx)
			loss := step(m, x, labels, vel, cfg)
			epochLoss += loss
			batches++
		}
		if batches > 0 {
			lastLoss = epochLoss / float64(batches)
		}
		if cfg.Log != nil {
			acc := Accuracy(m, ds)
			cfg.Log(epoch, lastLoss, acc)
		}
	}
	return lastLoss, nil
}

// velocity holds momentum buffers per weight layer.
type velocity struct {
	w map[int][]float32
	b map[int][]float32
}

func newVelocity(m *dnn.Model) *velocity {
	v := &velocity{w: map[int][]float32{}, b: map[int][]float32{}}
	for i, l := range m.Layers {
		if l.HasWeights() {
			v.w[i] = make([]float32, len(l.Weights.Data))
			v.b[i] = make([]float32, len(l.Bias))
		}
	}
	return v
}

// layerCache stores per-layer forward state needed by backward.
type layerCache struct {
	input  *tensor.Tensor4 // input activation
	output *tensor.Tensor4 // post-ReLU output
}

// step runs one forward+backward+update pass; returns the batch loss.
func step(m *dnn.Model, x *tensor.Tensor4, labels []int, vel *velocity, cfg Config) float64 {
	caches := make([]layerCache, len(m.Layers))
	cur := x
	for i, l := range m.Layers {
		caches[i].input = cur
		var out *tensor.Tensor4
		switch l.Kind {
		case dnn.Conv:
			out = tensor.Conv2D(cur, l.Weights, l.Bias, l.Conv)
		case dnn.FC:
			flat := tensor.Flatten(cur)
			prod := tensor.Mul(flat, l.Weights.Transpose())
			prod.AddBiasRows(l.Bias)
			out = &tensor.Tensor4{N: cur.N, C: l.OutFeatures, H: 1, W: 1, Data: prod.Data}
		case dnn.MaxPool:
			out = tensor.MaxPool2D(cur, l.PoolK)
		case dnn.GlobalAvgPool:
			gap := tensor.GlobalAvgPool2D(cur)
			out = &tensor.Tensor4{N: cur.N, C: cur.C, H: 1, W: 1, Data: gap.Data}
		default:
			panic("train: unsupported layer kind in step")
		}
		if l.ReLUAfter {
			out.ReLU()
		}
		caches[i].output = out
		cur = out
	}

	// Softmax cross-entropy loss and gradient.
	n := x.N
	logits := tensor.FromSlice(n, cur.C*cur.H*cur.W, cur.Data)
	probs := logits.Clone()
	probs.Softmax()
	var loss float64
	grad := tensor.NewMatrix(n, probs.Cols)
	for r := 0; r < n; r++ {
		p := probs.Row(r)
		g := grad.Row(r)
		y := labels[r]
		loss -= math.Log(math.Max(float64(p[y]), 1e-12))
		for j := range g {
			g[j] = p[j] / float32(n)
		}
		g[y] -= 1 / float32(n)
	}
	loss /= float64(n)

	// Backward pass.
	dOut := &tensor.Tensor4{N: n, C: cur.C, H: cur.H, W: cur.W, Data: grad.Data}
	for i := len(m.Layers) - 1; i >= 0; i-- {
		l := m.Layers[i]
		c := caches[i]
		if l.ReLUAfter {
			for j, v := range c.output.Data {
				if v <= 0 {
					dOut.Data[j] = 0
				}
			}
		}
		var dIn *tensor.Tensor4
		switch l.Kind {
		case dnn.Conv:
			dIn = convBackward(l, c.input, dOut, vel, i, cfg)
		case dnn.FC:
			dIn = fcBackward(l, c.input, dOut, vel, i, cfg)
		case dnn.MaxPool:
			dIn = maxPoolBackward(l, c.input, dOut)
		case dnn.GlobalAvgPool:
			dIn = gapBackward(c.input, dOut)
		}
		dOut = dIn
	}
	return loss
}

func applyUpdate(w, grad, vel []float32, lr, momentum, decay float64) {
	lrf := float32(lr)
	mf := float32(momentum)
	df := float32(decay)
	for i := range w {
		g := grad[i] + df*w[i]
		vel[i] = mf*vel[i] - lrf*g
		w[i] += vel[i]
	}
}

func fcBackward(l *dnn.Layer, in, dOut *tensor.Tensor4, vel *velocity, li int, cfg Config) *tensor.Tensor4 {
	n := in.N
	x := tensor.Flatten(in)                             // n x In
	dy := tensor.FromSlice(n, l.OutFeatures, dOut.Data) // n x Out
	dW := tensor.Mul(dy.Transpose(), x)                 // Out x In
	db := make([]float32, l.OutFeatures)
	for r := 0; r < n; r++ {
		row := dy.Row(r)
		for j, v := range row {
			db[j] += v
		}
	}
	dx := tensor.Mul(dy, l.Weights) // n x In
	applyUpdate(l.Weights.Data, dW.Data, vel.w[li], cfg.LearningRate, cfg.Momentum, cfg.WeightDecay)
	applyUpdate(l.Bias, db, vel.b[li], cfg.LearningRate, cfg.Momentum, 0)
	return &tensor.Tensor4{N: n, C: in.C, H: in.H, W: in.W, Data: dx.Data}
}

func convBackward(l *dnn.Layer, in, dOut *tensor.Tensor4, vel *velocity, li int, cfg Config) *tensor.Tensor4 {
	cs := l.Conv
	oh, ow := cs.OutH(), cs.OutW()
	dW := tensor.NewMatrix(l.Weights.Rows, l.Weights.Cols)
	db := make([]float32, cs.OutC)
	dIn := tensor.NewTensor4(in.N, in.C, in.H, in.W)
	dPatch := tensor.NewMatrix(cs.InC*cs.KH*cs.KW, oh*ow)
	dWn := tensor.NewMatrix(dW.Rows, dW.Cols)
	wT := l.Weights.Transpose()
	for s := 0; s < in.N; s++ {
		patches := tensor.Im2col(in, s, cs)
		dy := tensor.FromSlice(cs.OutC, oh*ow, dOut.Image(s))
		// dW += dy * patches^T
		tensor.MulInto(dWn, dy, patches.Transpose())
		for j, v := range dWn.Data {
			dW.Data[j] += v
		}
		for c := 0; c < cs.OutC; c++ {
			for _, v := range dy.Row(c) {
				db[c] += v
			}
		}
		// dPatches = W^T * dy ; scatter back with col2im.
		tensor.MulInto(dPatch, wT, dy)
		tensor.Col2im(dPatch, cs, dIn.Image(s))
	}
	applyUpdate(l.Weights.Data, dW.Data, vel.w[li], cfg.LearningRate, cfg.Momentum, cfg.WeightDecay)
	applyUpdate(l.Bias, db, vel.b[li], cfg.LearningRate, cfg.Momentum, 0)
	return dIn
}

func maxPoolBackward(l *dnn.Layer, in, dOut *tensor.Tensor4) *tensor.Tensor4 {
	k := l.PoolK
	dIn := tensor.NewTensor4(in.N, in.C, in.H, in.W)
	for n := 0; n < in.N; n++ {
		for c := 0; c < in.C; c++ {
			for oy := 0; oy < in.H/k; oy++ {
				for ox := 0; ox < in.W/k; ox++ {
					by, bx := oy*k, ox*k
					best := in.At(n, c, by, bx)
					for dy := 0; dy < k; dy++ {
						for dx := 0; dx < k; dx++ {
							if v := in.At(n, c, oy*k+dy, ox*k+dx); v > best {
								best = v
								by, bx = oy*k+dy, ox*k+dx
							}
						}
					}
					dIn.Set(n, c, by, bx, dIn.At(n, c, by, bx)+dOut.At(n, c, oy, ox))
				}
			}
		}
	}
	return dIn
}

func gapBackward(in, dOut *tensor.Tensor4) *tensor.Tensor4 {
	dIn := tensor.NewTensor4(in.N, in.C, in.H, in.W)
	inv := 1 / float32(in.H*in.W)
	for n := 0; n < in.N; n++ {
		for c := 0; c < in.C; c++ {
			g := dOut.At(n, c, 0, 0) * inv
			for y := 0; y < in.H; y++ {
				for x := 0; x < in.W; x++ {
					dIn.Set(n, c, y, x, g)
				}
			}
		}
	}
	return dIn
}

// Accuracy returns the fraction of correct predictions on ds.
func Accuracy(m *dnn.Model, ds *Dataset) float64 {
	preds := m.Predict(ds.Images)
	correct := 0
	for i, p := range preds {
		if p == ds.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(preds))
}

// Error returns 1 - Accuracy.
func Error(m *dnn.Model, ds *Dataset) float64 { return 1 - Accuracy(m, ds) }

// AccuracyWith returns the fraction of correct predictions on ds using
// a caller-owned reusable Forwarder, so repeated evaluations (the
// inference tail of fault-injection trials) allocate nothing in steady
// state. The count and the final division match Accuracy exactly, so
// the two paths are bit-identical on identical weights.
func AccuracyWith(f *dnn.Forwarder, ds *Dataset) float64 {
	logits := f.Forward(ds.Images)
	correct := 0
	for r := 0; r < logits.Rows; r++ {
		if logits.ArgmaxRow(r) == ds.Labels[r] {
			correct++
		}
	}
	return float64(correct) / float64(logits.Rows)
}

// ErrorWith returns 1 - AccuracyWith.
func ErrorWith(f *dnn.Forwarder, ds *Dataset) float64 { return 1 - AccuracyWith(f, ds) }
