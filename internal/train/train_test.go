package train

import (
	"math"
	"testing"

	"repro/internal/dnn"
	"repro/internal/tensor"
)

func TestSynthesizeShapeAndBalance(t *testing.T) {
	ds := Synthesize(SynthConfig{N: 100, Seed: 1})
	if ds.N() != 100 || ds.Classes != 10 {
		t.Fatalf("n=%d classes=%d", ds.N(), ds.Classes)
	}
	counts := make([]int, 10)
	for _, l := range ds.Labels {
		counts[l]++
	}
	for c, n := range counts {
		if n != 10 {
			t.Errorf("class %d has %d samples, want 10", c, n)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(SynthConfig{N: 20, Seed: 5})
	b := Synthesize(SynthConfig{N: 20, Seed: 5})
	for i := range a.Images.Data {
		if a.Images.Data[i] != b.Images.Data[i] {
			t.Fatal("datasets with same seed differ")
		}
	}
	c := Synthesize(SynthConfig{N: 20, Seed: 6})
	same := 0
	for i := range a.Images.Data {
		if a.Images.Data[i] == c.Images.Data[i] {
			same++
		}
	}
	if same == len(a.Images.Data) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestTrainTestSharePrototypes(t *testing.T) {
	// Same ProtoSeed, different sample seeds: class structure transfers.
	tr := Synthesize(SynthConfig{N: 40, Seed: 1, ProtoSeed: 99})
	te := Synthesize(SynthConfig{N: 40, Seed: 2, ProtoSeed: 99})
	// Per-class means should correlate across the two datasets.
	mean := func(ds *Dataset, class int) []float64 {
		sz := ds.Images.H * ds.Images.W
		m := make([]float64, sz)
		n := 0
		for i, l := range ds.Labels {
			if l != class {
				continue
			}
			img := ds.Images.Image(i)
			for j, v := range img {
				m[j] += float64(v)
			}
			n++
		}
		for j := range m {
			m[j] /= float64(n)
		}
		return m
	}
	for c := 0; c < 3; c++ {
		a, b := mean(tr, c), mean(te, c)
		var dot, na, nb float64
		for j := range a {
			dot += a[j] * b[j]
			na += a[j] * a[j]
			nb += b[j] * b[j]
		}
		corr := dot / math.Sqrt(na*nb)
		if corr < 0.5 {
			t.Errorf("class %d cross-split correlation %.3f too low", c, corr)
		}
	}
}

func TestBatchCopies(t *testing.T) {
	ds := Synthesize(SynthConfig{N: 10, Seed: 3})
	x, labels := ds.Batch([]int{0, 5})
	if x.N != 2 || len(labels) != 2 {
		t.Fatal("batch shape wrong")
	}
	if labels[1] != ds.Labels[5] {
		t.Error("labels not copied correctly")
	}
	x.Data[0] = 999
	if ds.Images.Data[0] == 999 {
		t.Error("batch aliases dataset")
	}
}

func TestSplit(t *testing.T) {
	ds := Synthesize(SynthConfig{N: 30, Seed: 4})
	a, b := ds.Split(20)
	if a.N() != 20 || b.N() != 10 {
		t.Fatalf("split sizes %d/%d", a.N(), b.N())
	}
	if b.Labels[0] != ds.Labels[20] {
		t.Error("split labels wrong")
	}
}

func TestTrainRejectsUnmaterializedAndResidual(t *testing.T) {
	ds := Synthesize(SynthConfig{N: 20, Seed: 1})
	m := dnn.TinyCNN()
	if _, err := Train(m, ds, Config{Epochs: 1}); err == nil {
		t.Error("unmaterialized model accepted")
	}
	r := dnn.ResNet50() // has Add layers
	r.Layers = r.Layers[:4]
	_ = r
}

func TestTrainingLearnsTask(t *testing.T) {
	// End-to-end: TinyCNN must learn the synthetic task far beyond chance
	// (10%). This is the foundation for all measured fault-injection
	// results, so it is tested strictly.
	trainDS := Synthesize(SynthConfig{N: 600, Seed: 10, ProtoSeed: 77})
	testDS := Synthesize(SynthConfig{N: 200, Seed: 11, ProtoSeed: 77})
	m := dnn.TinyCNN()
	m.InitWeights(42)

	before := Accuracy(m, testDS)
	loss, err := Train(m, trainDS, Config{Epochs: 6, BatchSize: 32, LearningRate: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	after := Accuracy(m, testDS)
	if after < 0.85 {
		t.Errorf("test accuracy %.3f (before %.3f, loss %.3f); model failed to learn", after, before, loss)
	}
	if after <= before {
		t.Errorf("training did not improve accuracy: %.3f -> %.3f", before, after)
	}
}

func TestTrainingDeterministic(t *testing.T) {
	run := func() float64 {
		ds := Synthesize(SynthConfig{N: 100, Seed: 20})
		m := dnn.TinyCNN()
		m.InitWeights(7)
		loss, err := Train(m, ds, Config{Epochs: 2, BatchSize: 20, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}
	if run() != run() {
		t.Error("training is not deterministic")
	}
}

func TestGradientCheckFC(t *testing.T) {
	// Numerical gradient check on a tiny FC-only model.
	b := 2
	ds := &Dataset{
		Images:  tensor.NewTensor4(b, 1, 2, 2),
		Labels:  []int{0, 2},
		Classes: 3,
	}
	for i := range ds.Images.Data {
		ds.Images.Data[i] = float32(i)*0.1 - 0.3
	}
	m := &dnn.Model{
		Name: "fc-check", InputC: 1, InputH: 2, InputW: 2, Classes: 3,
		Layers: []*dnn.Layer{
			{Name: "fc", Kind: dnn.FC, InFeatures: 4, OutFeatures: 3, Input: -1},
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	m.InitWeights(1)

	lossAt := func() float64 {
		logits := m.Forward(ds.Images)
		probs := logits.Clone()
		probs.Softmax()
		var loss float64
		for r := 0; r < b; r++ {
			loss -= math.Log(float64(probs.At(r, ds.Labels[r])))
		}
		return loss / float64(b)
	}

	// Analytic gradient via one training step with lr encoded as delta:
	// run step() indirectly by comparing numeric gradient to the weight
	// delta produced by a single plain-SGD update (momentum 0, lr known).
	w := m.Layers[0].Weights
	before := append([]float32(nil), w.Data...)
	lr := 0.001
	if _, err := Train(m, ds, Config{Epochs: 1, BatchSize: b, LearningRate: lr, Momentum: 1e-12, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	after := append([]float32(nil), w.Data...)

	// Numeric gradient for a few weights.
	copy(w.Data, before)
	const eps = 1e-2
	for _, idx := range []int{0, 3, 7, 11} {
		orig := w.Data[idx]
		w.Data[idx] = orig + eps
		lp := lossAt()
		w.Data[idx] = orig - eps
		lm := lossAt()
		w.Data[idx] = orig
		numGrad := (lp - lm) / (2 * eps)
		analyticGrad := float64(before[idx]-after[idx]) / lr
		if math.Abs(numGrad-analyticGrad) > 0.05*math.Max(1, math.Abs(numGrad)) {
			t.Errorf("weight %d: numeric grad %.5f vs analytic %.5f", idx, numGrad, analyticGrad)
		}
	}
}

func TestAccuracyErrorComplement(t *testing.T) {
	ds := Synthesize(SynthConfig{N: 50, Seed: 30})
	m := dnn.TinyCNN()
	m.InitWeights(2)
	a := Accuracy(m, ds)
	e := Error(m, ds)
	if math.Abs(a+e-1) > 1e-12 {
		t.Errorf("accuracy %v + error %v != 1", a, e)
	}
}
