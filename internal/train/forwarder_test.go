package train

import (
	"testing"

	"repro/internal/dnn"
)

func TestErrorWithMatchesError(t *testing.T) {
	// ErrorWith (the replica pool's reusable-Forwarder path) must agree
	// exactly with Error — the fault-injection delta is the difference of
	// two such measurements, so even a one-sample disagreement would bias
	// every campaign.
	m := dnn.TinyCNN()
	m.InitWeights(42)
	ds := Synthesize(SynthConfig{N: 120, Seed: 9, ProtoSeed: 77})
	want := Error(m, ds)
	f := dnn.NewForwarder(m)
	f.Workers = 1
	got := ErrorWith(f, ds)
	if got != want {
		t.Fatalf("ErrorWith = %v, Error = %v", got, want)
	}
	// And again on the reused Forwarder (buffers warm).
	if got2 := ErrorWith(f, ds); got2 != want {
		t.Fatalf("reused ErrorWith = %v, want %v", got2, want)
	}
	if acc := AccuracyWith(f, ds); acc != Accuracy(m, ds) {
		t.Fatalf("AccuracyWith = %v, Accuracy = %v", acc, Accuracy(m, ds))
	}
}
