package crossbar

import (
	"math"
	"strings"
	"testing"

	"repro/internal/envm"
)

func TestConfigValidate(t *testing.T) {
	good := Config{Rows: 64, Cols: 64}
	if err := good.Validate(); err != nil {
		t.Fatalf("minimal config rejected: %v", err)
	}
	bad := []Config{
		{Rows: 0, Cols: 64},
		{Rows: 64, Cols: 0},
		{Rows: -8, Cols: 64},
		{Rows: 64, Cols: 64, BPC: 5},
		{Rows: 64, Cols: 64, BPC: -1},
		{Rows: 64, Cols: 64, ADCBits: 17},
		{Rows: 64, Cols: 64, ADCBits: -1},
		{Rows: 64, Cols: 64, SpareCols: -1},
		{Rows: 64, Cols: 64, MaxRemaps: -2},
		{Rows: 64, Cols: 64, VarSigma: math.NaN()},
		{Rows: 64, Cols: 64, VarSigma: math.Inf(1)},
		{Rows: 64, Cols: 64, VarSigma: -0.01},
		{Rows: 64, Cols: 64, StuckRate: 1.5},
		{Rows: 64, Cols: 64, StuckRate: math.NaN()},
		{Rows: 64, Cols: 64, StuckColRate: -1},
		{Rows: 64, Cols: 64, StuckOnFrac: 2},
		{Rows: 64, Cols: 64, ADCHeadroom: math.NaN()},
		{Rows: 64, Cols: 64, DetectSigma: -3},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, c)
		}
	}
}

func TestConfigString(t *testing.T) {
	if s := (Config{Rows: 64, Cols: 32}).String(); s != "64x32" {
		t.Fatalf("minimal String = %q", s)
	}
	full := Config{Rows: 128, Cols: 64, BPC: 2, VarSigma: 0.05, StuckRate: 1e-4,
		StuckColRate: 1e-3, ADCBits: 6, SpareCols: 2, DetectSigma: 4, MaxRemaps: 32}
	s := full.String()
	for _, want := range []string{"128x64", "b2", "s0.05", "f0.0001", "cf0.001", "adc6", "sp2", "d4", "r32"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	// The string is an identity: distinct configs must render distinct.
	other := full
	other.DetectSigma = 3
	if other.String() == full.String() {
		t.Fatal("distinct configs share a String")
	}
}

func TestConfigMapKey(t *testing.T) {
	a := Config{Rows: 64, Cols: 64, BPC: 2, ADCBits: 6, VarSigma: 0.1, StuckColRate: 1e-3, DetectSigma: 4}
	b := Config{Rows: 64, Cols: 64, BPC: 2, ADCBits: 6, VarSigma: 0.02, SpareCols: 4}
	if a.MapKey() != b.MapKey() {
		t.Fatalf("fault knobs leaked into MapKey: %q vs %q", a.MapKey(), b.MapKey())
	}
	c := Config{Rows: 32, Cols: 64, BPC: 2, ADCBits: 6}
	if a.MapKey() == c.MapKey() {
		t.Fatal("tile geometry missing from MapKey")
	}
	d := Config{Rows: 64, Cols: 64, BPC: 2, ADCBits: 8}
	if a.MapKey() == d.MapKey() {
		t.Fatal("ADC design missing from MapKey")
	}
}

func TestLoadConfigStrict(t *testing.T) {
	c, err := LoadConfig(strings.NewReader(`{"Rows":64,"Cols":32,"ADCBits":6,"VarSigma":0.03}`))
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if c.Rows != 64 || c.Cols != 32 || c.ADCBits != 6 {
		t.Fatalf("decoded %+v", c)
	}
	bad := []string{
		`{"Rows":64,"Cols":32,"ADCBits":6,"Bogus":1}`,      // unknown field
		`{"Rows":0,"Cols":32,"ADCBits":6}`,                 // zero tile dim
		`{"Rows":-4,"Cols":32,"ADCBits":6}`,                // negative tile dim
		`{"Rows":64,"Cols":32}`,                            // zero-bit ADC
		`{"Rows":64,"Cols":32,"ADCBits":0}`,                // explicit zero-bit ADC
		`{"Rows":64,"Cols":32,"ADCBits":6,"VarSigma":"x"}`, // wrong type
		`{"Rows":64,"Cols":32,"ADCBits":6,"StuckRate":2}`,  // rate > 1
		`not json`,
	}
	for i, s := range bad {
		if _, err := LoadConfig(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: invalid config %s accepted", i, s)
		}
	}
}

func TestDeriveSigma(t *testing.T) {
	sig, err := DeriveSigma(envm.CTT)
	if err != nil {
		t.Fatal(err)
	}
	if sig <= 0 || sig >= 0.5 {
		t.Fatalf("derived sigma %v implausible for a fabricated technology", sig)
	}
	// BPC-invariance: the programmed-level sigma is device physics, not
	// grid spacing.
	lm3, err := envm.CTT.Levels(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := lm3.Levels[len(lm3.Levels)-1].Sigma; math.Abs(got-sig) > 1e-12 {
		t.Fatalf("sigma differs across BPC: %v vs %v", got, sig)
	}
}
