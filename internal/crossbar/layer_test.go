package crossbar

import (
	"math"
	"testing"

	"repro/internal/envm"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// testWeights builds a deterministic Out x In weight matrix with a mix
// of signs, magnitudes, and zeros (pruned weights).
func testWeights(out, in int, seed uint64) *tensor.Matrix {
	m := tensor.NewMatrix(out, in)
	s := seed
	for i := range m.Data {
		s = s*6364136223846793005 + 1442695040888963407
		m.Data[i] = float32(int32(s>>33)) / float32(1<<31) // [-1, 1)
		if i%4 == 0 {
			m.Data[i] = 0
		}
	}
	return m
}

func mustMap(t *testing.T, w *tensor.Matrix, cfg Config) *Layer {
	t.Helper()
	l, err := Map(w, cfg, envm.CTT)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func mustTrial(t *testing.T, l *Layer, cfg Config) *Trial {
	t.Helper()
	tr, err := l.NewTrial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestMapIdealIsIdentity: with an ideal analog write (BPC=0) the
// pristine mapping must be bit-identical to the source weights — the
// foundation of the determinism-parity acceptance criterion.
func TestMapIdealIsIdentity(t *testing.T) {
	w := testWeights(16, 48, 1)
	l := mustMap(t, w, Config{Rows: 16, Cols: 8})
	for i := range w.Data {
		if l.W0.Data[i] != w.Data[i] {
			t.Fatalf("W0[%d] = %v differs from source %v under ideal write", i, l.W0.Data[i], w.Data[i])
		}
	}
	if l.Segments() != 3*16 {
		t.Fatalf("Segments = %d, want %d", l.Segments(), 3*16)
	}
	if l.Tiles() != 3*2 {
		t.Fatalf("Tiles = %d, want %d", l.Tiles(), 3*2)
	}
}

// TestMapDACSnap: a 1-bit write DAC collapses each device to the two
// programmed levels, so the mapped baseline must differ from the
// source weights — and must be deterministic.
func TestMapDACSnap(t *testing.T) {
	w := testWeights(8, 32, 2)
	a := mustMap(t, w, Config{Rows: 16, Cols: 8, BPC: 1})
	diff := 0
	for i := range w.Data {
		if a.W0.Data[i] != w.Data[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("1-bit DAC left every weight unchanged; snapping is not wired")
	}
	b := mustMap(t, w, Config{Rows: 16, Cols: 8, BPC: 1})
	for i := range a.W0.Data {
		if a.W0.Data[i] != b.W0.Data[i] {
			t.Fatal("mapping is not deterministic")
		}
	}
	if _, err := Map(nil, Config{Rows: 16, Cols: 8}, envm.CTT); err == nil {
		t.Fatal("nil weight matrix accepted")
	}
}

// TestTrialMapKeyMismatch: a trial config with different mapping
// parameters must be rejected.
func TestTrialMapKeyMismatch(t *testing.T) {
	l := mustMap(t, testWeights(8, 16, 3), Config{Rows: 8, Cols: 8})
	if _, err := l.NewTrial(Config{Rows: 4, Cols: 8}); err == nil {
		t.Fatal("mismatched tile geometry accepted")
	}
	if _, err := l.NewTrial(Config{Rows: 8, Cols: 8, ADCBits: 4}); err == nil {
		t.Fatal("mismatched ADC design accepted")
	}
	if _, err := l.NewTrial(Config{Rows: 8, Cols: 8, VarSigma: 0.1, SpareCols: 2}); err != nil {
		t.Fatalf("fault knobs should not affect the mapping match: %v", err)
	}
}

// TestProgramIdealParity: zero variation, zero faults -> the
// programmed array is bit-identical to the pristine mapping with
// all-zero statistics.
func TestProgramIdealParity(t *testing.T) {
	cfg := Config{Rows: 16, Cols: 8}
	l := mustMap(t, testWeights(12, 40, 4), cfg)
	tr := mustTrial(t, l, cfg)
	tr.Program(stats.NewSource(99))
	for i := range tr.W.Data {
		if tr.W.Data[i] != l.W0.Data[i] {
			t.Fatalf("ideal trial differs from pristine at %d", i)
		}
	}
	if tr.Stats != (TrialStats{}) {
		t.Fatalf("ideal trial has stats %+v", tr.Stats)
	}
	if tr.NSR() != 0 || tr.MismatchFrac() != 0 {
		t.Fatalf("ideal trial NSR %v mismatch %v", tr.NSR(), tr.MismatchFrac())
	}
	if tr.Xbar() != nil {
		t.Fatal("ideal-ADC trial returned a kernel handle")
	}
}

// TestProgramDeterminism: same seed -> bit-identical array; different
// seed -> different array. Program must also fully reset prior state.
func TestProgramDeterminism(t *testing.T) {
	cfg := Config{Rows: 16, Cols: 8, VarSigma: 0.05, StuckRate: 1e-3, StuckColRate: 5e-3}
	l := mustMap(t, testWeights(16, 64, 5), cfg)
	a := mustTrial(t, l, cfg)
	b := mustTrial(t, l, cfg)
	a.Program(stats.NewSource(7))
	b.Program(stats.NewSource(8)) // different seed first: dirty b's state
	b.Program(stats.NewSource(7))
	for i := range a.W.Data {
		if a.W.Data[i] != b.W.Data[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	if a.Stats != b.Stats {
		t.Fatalf("same seed, different stats: %+v vs %+v", a.Stats, b.Stats)
	}
	b.Program(stats.NewSource(8))
	same := true
	for i := range a.W.Data {
		if a.W.Data[i] != b.W.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical arrays")
	}
}

// binomial4Sigma reports whether observed is within 4 standard
// deviations of a Binomial(n, p) mean (the envm injector battery's
// acceptance helper).
func binomial4Sigma(observed, n int, p float64) (ok bool, mean, sigma float64) {
	mean = float64(n) * p
	sigma = math.Sqrt(float64(n) * p * (1 - p))
	return math.Abs(float64(observed)-mean) <= 4*sigma, mean, sigma
}

// TestStuckColumnRate4Sigma: over many seed-pinned trials the observed
// stuck-column count must land inside the 4-sigma binomial interval
// around Segments * StuckColRate — the skip-sampling injector is a
// faithful Bernoulli process per column segment.
func TestStuckColumnRate4Sigma(t *testing.T) {
	cfg := Config{Rows: 16, Cols: 8, StuckColRate: 0.01}
	l := mustMap(t, testWeights(32, 64, 6), cfg)
	tr := mustTrial(t, l, cfg)
	const trials = 400
	stuck := 0
	for i := 0; i < trials; i++ {
		tr.Program(stats.NewSource(uint64(i)*2654435761 + 17))
		stuck += tr.Stats.StuckCols
	}
	n := trials * l.Segments()
	if ok, mean, sigma := binomial4Sigma(stuck, n, cfg.StuckColRate); !ok {
		t.Fatalf("stuck columns %d outside 4 sigma of Binomial(%d, %g): mean %.1f sigma %.1f",
			stuck, n, cfg.StuckColRate, mean, sigma)
	}
}

// TestStuckCellRate4Sigma: same battery for the per-device stuck-at
// process (two devices per weight).
func TestStuckCellRate4Sigma(t *testing.T) {
	cfg := Config{Rows: 16, Cols: 8, StuckRate: 1e-3}
	l := mustMap(t, testWeights(32, 64, 7), cfg)
	tr := mustTrial(t, l, cfg)
	const trials = 300
	cells := 0
	for i := 0; i < trials; i++ {
		tr.Program(stats.NewSource(uint64(i)*2654435761 + 23))
		cells += tr.Stats.StuckCells
	}
	n := trials * 2 * 32 * 64
	if ok, mean, sigma := binomial4Sigma(cells, n, cfg.StuckRate); !ok {
		t.Fatalf("stuck cells %d outside 4 sigma of Binomial(%d, %g): mean %.1f sigma %.1f",
			cells, n, cfg.StuckRate, mean, sigma)
	}
}

// TestVariationScale: programming variation must perturb nearly every
// weight with an RMS deviation on the order of sigma*wmax. (The mean
// deviation is NOT zero: devices whose target sits at the G_off edge
// clamp one tail of the Gaussian, biasing weights toward zero
// magnitude — that is the physical model, so only the scale is pinned.)
func TestVariationScale(t *testing.T) {
	cfg := Config{Rows: 32, Cols: 16, VarSigma: 0.05}
	l := mustMap(t, testWeights(32, 64, 8), cfg)
	tr := mustTrial(t, l, cfg)
	tr.Program(stats.NewSource(31))
	var ss float64
	for i := range tr.W.Data {
		d := float64(tr.W.Data[i]) - float64(l.W0.Data[i])
		ss += d * d
	}
	rms := math.Sqrt(ss / float64(len(tr.W.Data)))
	// Two devices per weight, each contributing between ~sigma^2/2
	// (clamped at the window edge) and sigma^2 of deviation variance.
	lo := 0.5 * cfg.VarSigma * l.wmax
	hi := 2 * cfg.VarSigma * l.wmax
	if rms < lo || rms > hi {
		t.Fatalf("variation RMS %v outside [%v, %v] for sigma %v", rms, lo, hi, cfg.VarSigma)
	}
	if tr.NSR() == 0 || tr.MismatchFrac() < 0.9 {
		t.Fatalf("variation should perturb nearly every weight (NSR %v, mismatch %v)", tr.NSR(), tr.MismatchFrac())
	}
}

// TestOnlineRecoversStuckColumns is the package-level acceptance core:
// with zero variation and column faults only, detection must flag
// exactly the damaged segments and scrubbing (ample spares) must
// restore the array bit-identical to pristine.
func TestOnlineRecoversStuckColumns(t *testing.T) {
	cfg := Config{Rows: 16, Cols: 8, StuckColRate: 0.02, SpareCols: 4, DetectSigma: 4}
	l := mustMap(t, testWeights(16, 64, 9), cfg)
	tr := mustTrial(t, l, cfg)
	src := stats.NewSource(55)
	tr.Program(src)
	if tr.Stats.StuckCols == 0 {
		t.Fatal("seed produced no stuck columns; pick another seed")
	}
	damaged := 0
	for s := 0; s < l.Segments(); s++ {
		if tr.segDev(s) != 0 {
			damaged++
		}
	}
	flagged := tr.Detect()
	if len(flagged) != damaged {
		t.Fatalf("flagged %d segments, %d have nonzero deviation", len(flagged), damaged)
	}
	// A stuck-off line over an all-zero target segment deviates by
	// nothing; those columns are undetectable AND harmless.
	if len(flagged) > tr.Stats.StuckCols {
		t.Fatalf("flagged %d > %d injected stuck columns", len(flagged), tr.Stats.StuckCols)
	}
	tr.Scrub(flagged, src.Fork(4))
	if tr.Stats.Remapped != len(flagged) || tr.Stats.Zeroed != 0 {
		t.Fatalf("scrub: %+v, want all %d flagged remapped", tr.Stats, len(flagged))
	}
	for i := range tr.W.Data {
		if tr.W.Data[i] != l.W0.Data[i] {
			t.Fatalf("array not pristine after recovery (index %d)", i)
		}
	}
	if tr.Stats.Rewrites < tr.Stats.Remapped {
		t.Fatalf("rewrites %d < remaps %d: endurance undercounted", tr.Stats.Rewrites, tr.Stats.Remapped)
	}
}

// TestScrubSpareExhaustion: with no spares every flagged segment is
// zeroed — graceful degradation, not corruption.
func TestScrubSpareExhaustion(t *testing.T) {
	cfg := Config{Rows: 16, Cols: 8, StuckColRate: 0.05, SpareCols: 0, DetectSigma: 4}
	l := mustMap(t, testWeights(16, 64, 10), cfg)
	tr := mustTrial(t, l, cfg)
	src := stats.NewSource(77)
	tr.Program(src)
	flagged := tr.Online(src.Fork(4))
	if len(flagged) == 0 {
		t.Fatal("seed produced no flagged columns; pick another seed")
	}
	if tr.Stats.Remapped != 0 || tr.Stats.Zeroed != len(flagged) || tr.Stats.Rewrites != 0 {
		t.Fatalf("no-spare scrub: %+v", tr.Stats)
	}
	for _, s := range flagged {
		rt, j := s/l.out, s%l.out
		lo, hi := l.segRange(rt)
		for i := lo; i < hi; i++ {
			if tr.W.Data[j*l.in+i] != 0 {
				t.Fatalf("zeroed segment %d still has weight at col %d", s, i)
			}
		}
	}
	if tr.Stats.ZeroedWeights == 0 {
		t.Fatal("ZeroedWeights not counted")
	}
}

// TestScrubRemapBudget: MaxRemaps caps the endurance spend; flagged
// segments beyond the budget degrade to zero.
func TestScrubRemapBudget(t *testing.T) {
	cfg := Config{Rows: 16, Cols: 8, StuckColRate: 0.05, SpareCols: 4, DetectSigma: 4, MaxRemaps: 1}
	l := mustMap(t, testWeights(16, 64, 11), cfg)
	tr := mustTrial(t, l, cfg)
	// Deterministically hunt for a seed with >= 2 detectable stuck
	// columns (stuck-off lines over all-zero targets are invisible).
	var flagged []int
	for seed := uint64(1); ; seed++ {
		if seed > 200 {
			t.Fatal("no seed in 1..200 produced >= 2 flagged segments")
		}
		src := stats.NewSource(seed)
		tr.Program(src)
		if len(tr.Detect()) >= 2 {
			flagged = tr.Online(src.Fork(4))
			break
		}
	}
	if tr.Stats.Rewrites != 1 {
		t.Fatalf("rewrites %d, budget is 1", tr.Stats.Rewrites)
	}
	if tr.Stats.Remapped+tr.Stats.Zeroed != len(flagged) {
		t.Fatalf("remapped %d + zeroed %d != flagged %d", tr.Stats.Remapped, tr.Stats.Zeroed, len(flagged))
	}
	if tr.Stats.Zeroed == 0 {
		t.Fatal("budget did not force any degradation")
	}
}

// TestDetectVariationThreshold: at DetectSigma=6 pure variation stays
// under the threshold (no false alarms on this seed); at DetectSigma
// near zero nearly every segment flags.
func TestDetectVariationThreshold(t *testing.T) {
	base := Config{Rows: 16, Cols: 8, VarSigma: 0.03}
	l := mustMap(t, testWeights(16, 64, 12), base)

	loose := base
	loose.DetectSigma = 6
	tr := mustTrial(t, l, loose)
	tr.Program(stats.NewSource(13))
	if flagged := tr.Detect(); len(flagged) != 0 {
		t.Fatalf("6-sigma threshold flagged %d pure-variation segments", len(flagged))
	}

	tight := base
	tight.DetectSigma = 0.01
	tr2 := mustTrial(t, l, tight)
	tr2.Program(stats.NewSource(13))
	if flagged := tr2.Detect(); len(flagged) < l.Segments()/2 {
		t.Fatalf("0.01-sigma threshold flagged only %d of %d segments", len(flagged), l.Segments())
	}
}

// TestXbarHandle: the ADC trial route exposes a consistent kernel
// handle over the trial's effective weights.
func TestXbarHandle(t *testing.T) {
	cfg := Config{Rows: 16, Cols: 8, ADCBits: 6}
	l := mustMap(t, testWeights(8, 32, 14), cfg)
	tr := mustTrial(t, l, cfg)
	tr.Program(stats.NewSource(3))
	x := tr.Xbar()
	if x == nil {
		t.Fatal("ADC trial returned no kernel handle")
	}
	if x.W != tr.W || x.TileRows != 16 || x.ADCBits != 6 {
		t.Fatalf("handle mismatch: %+v", x)
	}
	if len(x.FS) != l.Segments() {
		t.Fatalf("FS length %d != %d segments", len(x.FS), l.Segments())
	}
	px := l.PristineXbar()
	if px == nil || px.W != l.W0 {
		t.Fatal("pristine handle must wrap W0")
	}
	for i, fs := range x.FS {
		if fs < 0 {
			t.Fatalf("negative full scale at %d", i)
		}
		if fs != px.FS[i] {
			t.Fatal("trial and pristine handles must share calibration")
		}
	}
}

// TestForEachHitExtremes: rate 0 visits nothing, rate 1 visits every
// index exactly once in order.
func TestForEachHitExtremes(t *testing.T) {
	src := stats.NewSource(1)
	forEachHit(100, 0, src, func(i int, _ *stats.Source) {
		t.Fatal("rate 0 produced a hit")
	})
	var got []int
	forEachHit(5, 1, src, func(i int, _ *stats.Source) { got = append(got, i) })
	if len(got) != 5 {
		t.Fatalf("rate 1 visited %d of 5", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("rate 1 out of order: %v", got)
		}
	}
}
