package crossbar

import (
	"fmt"
	"math"

	"repro/internal/envm"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Layer is the pristine crossbar mapping of one weight matrix: each
// weight w becomes a differential pair of target conductances
// (gPos, gNeg) = (max(w,0), max(-w,0)) / wmax, optionally snapped to
// the write-DAC grid of the technology's level model. W0 holds the
// effective weights those targets read back with no noise — the mapped
// baseline all trial perturbations are measured against. Building a
// Layer is the expensive, per-design-point step; it is immutable and
// shared read-only by every trial (the ares evaluator caches one per
// Config.MapKey).
type Layer struct {
	mapCfg  Config // mapping subset, defaults applied
	mapKey  string
	out, in int
	nrt     int // row tiles over the k-dimension (in)
	nct     int // column tiles over the outputs
	wmax    float64
	gPos    []float64 // target conductances, row-major out x in
	gNeg    []float64
	W0      *tensor.Matrix
	fs      []float32 // ADC full-scale per segment [rt*out + j]
}

// Map builds the pristine crossbar mapping of w (Out x In, the dense
// layer layout) under cfg on the given technology. Only the mapping
// subset of cfg (tile geometry, BPC, ADC design) matters here; fault
// rates and the online policy bind later, per trial.
func Map(w *tensor.Matrix, cfg Config, tech envm.Tech) (*Layer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if w == nil || w.Rows < 1 || w.Cols < 1 {
		return nil, fmt.Errorf("crossbar: cannot map an empty weight matrix")
	}
	cfg = cfg.withDefaults()
	grid, err := cfg.dacGrid(tech)
	if err != nil {
		return nil, err
	}
	out, in := w.Rows, w.Cols
	l := &Layer{
		mapCfg: Config{Rows: cfg.Rows, Cols: cfg.Cols, BPC: cfg.BPC,
			ADCBits: cfg.ADCBits, ADCHeadroom: cfg.ADCHeadroom},
		mapKey: cfg.MapKey(),
		out:    out, in: in,
		nrt:  (in + cfg.Rows - 1) / cfg.Rows,
		nct:  (out + cfg.Cols - 1) / cfg.Cols,
		gPos: make([]float64, out*in),
		gNeg: make([]float64, out*in),
		W0:   tensor.NewMatrix(out, in),
	}
	// The conductance window spans the largest weight magnitude; an
	// all-zero matrix maps to an arbitrary non-zero scale so the
	// normalization below stays finite.
	for _, v := range w.Data {
		if a := math.Abs(float64(v)); a > l.wmax {
			l.wmax = a
		}
	}
	if l.wmax == 0 {
		l.wmax = 1
	}
	for i, v := range w.Data {
		a := float64(v)
		gpRaw := math.Max(a, 0) / l.wmax
		gmRaw := math.Max(-a, 0) / l.wmax
		gp, gm := gpRaw, gmRaw
		if grid != nil {
			gp = snap(gp, grid)
			gm = snap(gm, grid)
		}
		l.gPos[i] = gp
		l.gNeg[i] = gm
		// Perturbation form: the DAC snap error folds into the pristine
		// baseline as a delta on the original weight, so with BPC=0 the
		// deltas are exactly zero and W0 is bit-identical to w — no
		// roundtrip division error.
		d := (gp - gpRaw) - (gm - gmRaw)
		if d == 0 {
			l.W0.Data[i] = v
		} else {
			l.W0.Data[i] = float32(a + d*l.wmax)
		}
	}
	// ADC full scale per (row-tile, column): headroom x the L1 norm of
	// the pristine segment — the largest partial sum the column can
	// produce from activations in [0, 1].
	l.fs = make([]float32, l.nrt*out)
	for rt := 0; rt < l.nrt; rt++ {
		lo, hi := l.segRange(rt)
		for j := 0; j < out; j++ {
			sum := 0.0
			for i := lo; i < hi; i++ {
				sum += math.Abs(float64(l.W0.Data[j*in+i]))
			}
			l.fs[rt*out+j] = float32(cfg.ADCHeadroom * sum)
		}
	}
	return l, nil
}

// snap returns the grid level nearest to g (ties resolve to the lower
// level). The grid is ascending and tiny (<= 16 levels), so a linear
// scan beats a branchy binary search.
func snap(g float64, grid []float64) float64 {
	best := grid[0]
	bd := math.Abs(g - best)
	for _, lv := range grid[1:] {
		if d := math.Abs(g - lv); d < bd {
			best, bd = lv, d
		}
	}
	return best
}

// segRange returns the [lo, hi) input rows of row-tile rt.
func (l *Layer) segRange(rt int) (int, int) {
	lo := rt * l.mapCfg.Rows
	hi := lo + l.mapCfg.Rows
	if hi > l.in {
		hi = l.in
	}
	return lo, hi
}

// Pristine returns the mapped baseline weights (read-only).
func (l *Layer) Pristine() *tensor.Matrix { return l.W0 }

// Segments returns the number of column segments (row-tiles x outputs)
// — the population the stuck-column Bernoulli process draws over.
func (l *Layer) Segments() int { return l.nrt * l.out }

// Tiles returns the number of physical tiles (row-tiles x column-tiles)
// — each holds its own SpareCols spare columns.
func (l *Layer) Tiles() int { return l.nrt * l.nct }

// PristineXbar returns a kernel handle over the pristine mapping, or
// nil when the ADC is ideal (route W0 through the dense kernels
// instead). Used to measure the mapped baseline through exactly the
// arithmetic trials use.
func (l *Layer) PristineXbar() *tensor.Xbar {
	if l.mapCfg.ADCBits == 0 {
		return nil
	}
	return &tensor.Xbar{W: l.W0, TileRows: l.mapCfg.Rows, ADCBits: l.mapCfg.ADCBits,
		FS: l.fs, ClipCounter: met.adcClips}
}

// TrialStats counts what one programmed trial did to the array.
type TrialStats struct {
	// StuckCells and StuckCols are injected faults (devices and column
	// drivers respectively).
	StuckCells, StuckCols int
	// Flagged is the number of column segments the online detector
	// flagged; Remapped of those were repaired onto spares, Zeroed were
	// degraded to zero output.
	Flagged, Remapped, Zeroed int
	// ZeroedWeights is the total weight count inside zeroed segments.
	ZeroedWeights int
	// Rewrites counts spare-column programming operations — the
	// endurance spend of this trial's scrub, including write-verify
	// rejects.
	Rewrites int
}

// Trial is one programmed instance of a mapped layer: the pristine
// targets plus sampled variation and faults, materialized as an
// effective weight matrix the kernels consume. A Trial is reusable
// (Program resets it) but not concurrency-safe; the ares replica pool
// gives each worker its own.
type Trial struct {
	ly         *Layer
	cfg        Config // full trial config, defaults applied
	W          *tensor.Matrix
	dPos, dNeg []float64 // per-device conductance deltas vs target
	sparesUsed []int     // per tile (rt*nct + ct)
	remapsUsed int
	Stats      TrialStats
}

// NewTrial binds a trial configuration (fault rates + online policy)
// to the mapped layer. The mapping subset of cfg must match the one
// the layer was built with.
func (l *Layer) NewTrial(cfg Config) (*Trial, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.MapKey() != l.mapKey {
		return nil, fmt.Errorf("crossbar: trial mapping %q does not match layer mapping %q", cfg.MapKey(), l.mapKey)
	}
	return &Trial{
		ly:         l,
		cfg:        cfg,
		W:          tensor.NewMatrix(l.out, l.in),
		dPos:       make([]float64, l.out*l.in),
		dNeg:       make([]float64, l.out*l.in),
		sparesUsed: make([]int, l.nrt*l.nct),
	}, nil
}

// Program writes the array: fresh per-device variation (fork 1),
// stuck-at cells (fork 2), and stuck column drivers (fork 3), then
// materializes the effective weights W = W0 + (dPos-dNeg)*wmax. With
// all three mechanisms off, W is a bit-identical copy of the pristine
// mapping. The trial's previous state is fully reset.
func (t *Trial) Program(src *stats.Source) {
	ly, cfg := t.ly, t.cfg
	t.Stats = TrialStats{}
	t.remapsUsed = 0
	for i := range t.sparesUsed {
		t.sparesUsed[i] = 0
	}
	for i := range t.dPos {
		t.dPos[i] = 0
		t.dNeg[i] = 0
	}
	if cfg.VarSigma > 0 {
		vsrc := src.Fork(1)
		for i := range t.dPos {
			t.dPos[i] = varDelta(ly.gPos[i], cfg.VarSigma, vsrc)
			t.dNeg[i] = varDelta(ly.gNeg[i], cfg.VarSigma, vsrc)
		}
	}
	if cfg.StuckRate > 0 {
		csrc := src.Fork(2)
		forEachHit(2*len(t.dPos), cfg.StuckRate, csrc, func(d int, u *stats.Source) {
			g := 0.0
			if u.Float64() < cfg.StuckOnFrac {
				g = 1.0
			}
			w := d >> 1
			if d&1 == 0 {
				t.dPos[w] = g - ly.gPos[w]
			} else {
				t.dNeg[w] = g - ly.gNeg[w]
			}
			t.Stats.StuckCells++
		})
	}
	if cfg.StuckColRate > 0 {
		ksrc := src.Fork(3)
		forEachHit(ly.Segments(), cfg.StuckColRate, ksrc, func(s int, u *stats.Source) {
			pos := u.Float64() < 0.5
			g := 0.0
			if u.Float64() < cfg.StuckOnFrac {
				g = 1.0
			}
			rt, j := s/ly.out, s%ly.out
			lo, hi := ly.segRange(rt)
			for i := lo; i < hi; i++ {
				w := j*ly.in + i
				if pos {
					t.dPos[w] = g - ly.gPos[w]
				} else {
					t.dNeg[w] = g - ly.gNeg[w]
				}
			}
			t.Stats.StuckCols++
		})
	}
	for i, w0 := range ly.W0.Data {
		d := t.dPos[i] - t.dNeg[i]
		if d == 0 {
			t.W.Data[i] = w0
		} else {
			t.W.Data[i] = float32(float64(w0) + d*ly.wmax)
		}
	}
	met.stuckCells.Add(int64(t.Stats.StuckCells))
	met.stuckCols.Add(int64(t.Stats.StuckCols))
}

// varDelta samples one device's programming error: Gaussian around the
// target, clamped to the physical conductance window [0, 1].
func varDelta(target, sigma float64, src *stats.Source) float64 {
	g := target + src.Gaussian(0, sigma)
	if g < 0 {
		g = 0
	} else if g > 1 {
		g = 1
	}
	return g - target
}

// forEachHit visits each of n Bernoulli(p) hits via geometric
// skip-sampling (the envm.InjectArray idiom): cost scales with the
// number of hits, not n, which matters at per-column rates of 1e-4
// over millions of segments.
func forEachHit(n int, p float64, src *stats.Source, fn func(i int, src *stats.Source)) {
	if p <= 0 || n == 0 {
		return
	}
	if p >= 1 {
		for i := 0; i < n; i++ {
			fn(i, src)
		}
		return
	}
	logq := math.Log1p(-p)
	i := 0
	for {
		u := src.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		fgap := math.Log(u) / logq
		if fgap >= float64(n-i) {
			break
		}
		i += int(fgap)
		if i >= n {
			break
		}
		fn(i, src)
		i++
	}
}

// threshold returns the detection threshold for segment s: DetectSigma
// standard deviations of the expected pristine probe deviation. Each
// of the segment's rows contributes two devices with variation
// VarSigma, so the column-sum deviation has sigma
// VarSigma*wmax*sqrt(2*rows). With VarSigma zero the threshold is
// zero: any nonzero deviation flags.
func (t *Trial) threshold(s int) float64 {
	lo, hi := t.ly.segRange(s / t.ly.out)
	return t.cfg.DetectSigma * t.cfg.VarSigma * t.ly.wmax * math.Sqrt(2*float64(hi-lo))
}

// segDev returns the probe deviation of segment s: the column's analog
// response to an all-ones probe vector minus the digital reference sum
// the mapper recorded — in weight units, sum(W - W0) over the segment.
func (t *Trial) segDev(s int) float64 {
	rt, j := s/t.ly.out, s%t.ly.out
	lo, hi := t.ly.segRange(rt)
	dev := 0.0
	for i := lo; i < hi; i++ {
		w := j*t.ly.in + i
		dev += float64(t.W.Data[w]) - float64(t.ly.W0.Data[w])
	}
	return dev
}

// Detect runs the reference-column check over every segment and
// returns the flagged segment indices in ascending order.
func (t *Trial) Detect() []int {
	var flagged []int
	for s := 0; s < t.ly.Segments(); s++ {
		if math.Abs(t.segDev(s)) > t.threshold(s) {
			flagged = append(flagged, s)
		}
	}
	t.Stats.Flagged += len(flagged)
	met.detectHits.Add(int64(len(flagged)))
	return flagged
}

// Scrub repairs the flagged segments: each is rewritten from the
// pristine targets onto a spare column of its tile (fresh variation
// draws, write-verify against the detection threshold; a spare that is
// itself stuck at the ambient column-fault rate fails verify and the
// next spare is tried). Every programming operation spends one column
// write against the remap budget. A segment whose tile is out of
// spares — or whose budget is exhausted — is zeroed instead of left
// corrupt: the layer degrades gracefully rather than aborting.
func (t *Trial) Scrub(flagged []int, src *stats.Source) {
	ly, cfg := t.ly, t.cfg
	for _, s := range flagged {
		rt, j := s/ly.out, s%ly.out
		tile := rt*ly.nct + j/cfg.Cols
		repaired := false
		for {
			if cfg.MaxRemaps > 0 && t.remapsUsed >= cfg.MaxRemaps {
				break
			}
			if t.sparesUsed[tile] >= cfg.SpareCols {
				break
			}
			t.sparesUsed[tile]++
			t.remapsUsed++
			t.Stats.Rewrites++
			// The spare column carries stuck faults at the ambient
			// per-column rate; a bad spare is written, fails verify,
			// and stays consumed.
			if cfg.StuckColRate > 0 && src.Float64() < cfg.StuckColRate {
				continue
			}
			if t.programSegment(s, src) {
				repaired = true
				break
			}
		}
		if repaired {
			t.Stats.Remapped++
		} else {
			t.zeroSegment(s)
			t.Stats.Zeroed++
		}
	}
	met.colsRemapped.Add(int64(t.Stats.Remapped))
	met.colsZeroed.Add(int64(t.Stats.Zeroed))
	met.scrubRewrites.Add(int64(t.Stats.Rewrites))
}

// Online runs the full tolerance loop (detect, then scrub) and returns
// the flagged segments.
func (t *Trial) Online(src *stats.Source) []int {
	flagged := t.Detect()
	t.Scrub(flagged, src)
	return flagged
}

// programSegment rewrites segment s from the pristine targets with
// fresh variation draws and write-verifies it against the detection
// threshold.
func (t *Trial) programSegment(s int, src *stats.Source) bool {
	ly, cfg := t.ly, t.cfg
	rt, j := s/ly.out, s%ly.out
	lo, hi := ly.segRange(rt)
	for i := lo; i < hi; i++ {
		w := j*ly.in + i
		t.dPos[w] = 0
		t.dNeg[w] = 0
		if cfg.VarSigma > 0 {
			t.dPos[w] = varDelta(ly.gPos[w], cfg.VarSigma, src)
			t.dNeg[w] = varDelta(ly.gNeg[w], cfg.VarSigma, src)
		}
		d := t.dPos[w] - t.dNeg[w]
		if d == 0 {
			t.W.Data[w] = ly.W0.Data[w]
		} else {
			t.W.Data[w] = float32(float64(ly.W0.Data[w]) + d*ly.wmax)
		}
	}
	return math.Abs(t.segDev(s)) <= t.threshold(s)
}

// zeroSegment degrades segment s to zero output.
func (t *Trial) zeroSegment(s int) {
	ly := t.ly
	rt, j := s/ly.out, s%ly.out
	lo, hi := ly.segRange(rt)
	for i := lo; i < hi; i++ {
		t.W.Data[j*ly.in+i] = 0
	}
	t.Stats.ZeroedWeights += hi - lo
}

// Xbar returns the kernel handle over this trial's effective weights,
// or nil when the ADC is ideal (the caller overlays W onto the dense
// kernels instead).
func (t *Trial) Xbar() *tensor.Xbar {
	if t.cfg.ADCBits == 0 {
		return nil
	}
	return &tensor.Xbar{W: t.W, TileRows: t.cfg.Rows, ADCBits: t.cfg.ADCBits,
		FS: t.ly.fs, ClipCounter: met.adcClips}
}

// NSR returns the noise-to-signal ratio of the effective weights:
// sum((W-W0)^2) / sum(W0^2).
func (t *Trial) NSR() float64 {
	num, den := 0.0, 0.0
	for i, v := range t.W.Data {
		d := float64(v) - float64(t.ly.W0.Data[i])
		num += d * d
		w0 := float64(t.ly.W0.Data[i])
		den += w0 * w0
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// MismatchFrac returns the fraction of effective weights that differ
// from the pristine mapping.
func (t *Trial) MismatchFrac() float64 {
	n := 0
	for i, v := range t.W.Data {
		if v != t.ly.W0.Data[i] {
			n++
		}
	}
	return float64(n) / float64(len(t.W.Data))
}
