// Package crossbar models compute-in-memory inference on eNVM crossbar
// arrays: weights map to differential conductance pairs on fixed-size
// tiles, matrix-vector products accumulate along bitlines in the analog
// domain, and per-column ADCs quantize the partial sums. Device
// non-idealities — programming variation sampled from the envm level
// model, stuck-at-G_on/G_off cells, and stuck column drivers — perturb
// the *computation*, not just stored bits, which is the failure mode
// the storage-oriented fault pipeline (internal/ares RunTrial) cannot
// express.
//
// The package also implements the online tolerance loop from the
// reliability literature: reference-column detection compares each
// column's analog probe response against its digital reference sum,
// a remap scrubber relocates flagged columns to per-tile spares
// (rewriting from the pristine weights and spending endurance), and a
// graceful-degradation path zeroes columns that cannot be repaired
// instead of aborting the trial. internal/mitigate plans the policy
// (threshold, budgets) against the deployment's endurance machinery;
// internal/ares drives trials through it (EvalTrialCrossbar).
package crossbar

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/envm"
)

// Config describes one crossbar design point plus its fault environment
// and online-tolerance policy. The zero value of each knob keeps the
// corresponding mechanism off (no variation, no faults, ideal ADC, no
// detection), so Config{Rows: 64, Cols: 64} is an ideal crossbar whose
// trials reproduce the dense digital forward pass bit for bit.
type Config struct {
	// Rows and Cols are the tile dimensions: Rows wordlines (inputs)
	// by Cols differential column pairs (outputs) per tile. A layer's
	// weight matrix is cut into ceil(In/Rows) x ceil(Out/Cols) tiles.
	Rows, Cols int
	// BPC is the write-DAC resolution in bits per device: target
	// conductances snap to the 2^BPC programmed levels of the envm
	// level model for the campaign's technology. 0 models an ideal
	// analog write (no target quantization) — the parity configuration.
	BPC int
	// VarSigma is the per-device programming-variation sigma in
	// normalized conductance-window units. 0 disables variation; use
	// DeriveSigma to take the technology's calibrated level sigma.
	VarSigma float64
	// StuckRate is the per-device stuck-at probability (each weight is
	// two devices). A stuck device's conductance pins to G_on or G_off
	// regardless of the programmed target.
	StuckRate float64
	// StuckColRate is the per-column stuck-driver probability: the
	// whole positive or negative line of one (row-tile, output) column
	// pins to G_on or G_off. This is the column-granular fault class
	// the online detector is built to catch.
	StuckColRate float64
	// StuckOnFrac is the fraction of stuck faults pinned at G_on (the
	// damaging direction); the rest pin at G_off. 0 means the default
	// 0.5.
	StuckOnFrac float64
	// ADCBits is the per-column ADC resolution; 0 disables ADC
	// quantization entirely (ideal readout — the parity configuration).
	ADCBits int
	// ADCHeadroom scales the per-column ADC full-scale range, which is
	// calibrated to the pristine column's L1 weight norm per tile.
	// 0 means the default 1.0.
	ADCHeadroom float64
	// SpareCols is the number of spare column pairs per tile available
	// to the remap scrubber.
	SpareCols int
	// DetectSigma is the online-detection threshold in multiples of
	// the expected probe-deviation sigma (VarSigma * wmax *
	// sqrt(2*rows)); a column whose probe deviation exceeds it is
	// flagged for remap. 0 disables online tolerance entirely.
	DetectSigma float64
	// MaxRemaps caps column rewrites per trial (the per-scrub-epoch
	// endurance budget; see mitigate.PlanOnline). 0 means unlimited.
	MaxRemaps int
}

// withDefaults resolves the zero-value knobs that mean "default"
// rather than "off".
func (c Config) withDefaults() Config {
	if c.StuckOnFrac == 0 {
		c.StuckOnFrac = 0.5
	}
	if c.ADCHeadroom == 0 {
		c.ADCHeadroom = 1
	}
	return c
}

// Validate rejects non-physical configurations. Rates and sigmas must
// be finite and non-negative; NaN is always a bug in the caller, never
// a request for a default.
func (c Config) Validate() error {
	if c.Rows < 1 || c.Cols < 1 {
		return fmt.Errorf("crossbar: tile %dx%d must have positive dimensions", c.Rows, c.Cols)
	}
	if c.BPC < 0 || c.BPC > 4 {
		return fmt.Errorf("crossbar: write DAC bits %d out of range [0, 4]", c.BPC)
	}
	if c.ADCBits < 0 || c.ADCBits > 16 {
		return fmt.Errorf("crossbar: ADC bits %d out of range [0, 16]", c.ADCBits)
	}
	if c.SpareCols < 0 {
		return fmt.Errorf("crossbar: negative spare columns %d", c.SpareCols)
	}
	if c.MaxRemaps < 0 {
		return fmt.Errorf("crossbar: negative remap budget %d", c.MaxRemaps)
	}
	for _, f := range []struct {
		name     string
		v        float64
		isRate   bool
		nonZeroP bool
	}{
		{"VarSigma", c.VarSigma, false, false},
		{"StuckRate", c.StuckRate, true, false},
		{"StuckColRate", c.StuckColRate, true, false},
		{"StuckOnFrac", c.StuckOnFrac, true, false},
		{"ADCHeadroom", c.ADCHeadroom, false, false},
		{"DetectSigma", c.DetectSigma, false, false},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("crossbar: %s %v must be finite", f.name, f.v)
		}
		if f.v < 0 {
			return fmt.Errorf("crossbar: %s %v must not be negative", f.name, f.v)
		}
		if f.isRate && f.v > 1 {
			return fmt.Errorf("crossbar: %s %v outside [0, 1]", f.name, f.v)
		}
	}
	return nil
}

// String renders the configuration compactly and deterministically:
// the tile dimensions always, every other knob only when set, so the
// string doubles as a cache key and as part of the campaign config ID
// (checkpoint resume must match across processes).
func (c Config) String() string {
	s := fmt.Sprintf("%dx%d", c.Rows, c.Cols)
	if c.BPC > 0 {
		s += fmt.Sprintf(",b%d", c.BPC)
	}
	if c.VarSigma > 0 {
		s += fmt.Sprintf(",s%.4g", c.VarSigma)
	}
	if c.StuckRate > 0 {
		s += fmt.Sprintf(",f%.4g", c.StuckRate)
	}
	if c.StuckColRate > 0 {
		s += fmt.Sprintf(",cf%.4g", c.StuckColRate)
	}
	if c.StuckOnFrac != 0 && c.StuckOnFrac != 0.5 {
		s += fmt.Sprintf(",on%.4g", c.StuckOnFrac)
	}
	if c.ADCBits > 0 {
		s += fmt.Sprintf(",adc%d", c.ADCBits)
		if c.ADCHeadroom != 0 && c.ADCHeadroom != 1 {
			s += fmt.Sprintf(",hr%.4g", c.ADCHeadroom)
		}
	}
	if c.SpareCols > 0 {
		s += fmt.Sprintf(",sp%d", c.SpareCols)
	}
	if c.DetectSigma > 0 {
		s += fmt.Sprintf(",d%.4g", c.DetectSigma)
		if c.MaxRemaps > 0 {
			s += fmt.Sprintf(",r%d", c.MaxRemaps)
		}
	}
	return s
}

// MapKey identifies the pristine mapping and baseline this config
// induces: tile geometry, write-DAC resolution, and ADC design. Fault
// rates and the online policy vary per campaign config but share one
// mapped baseline, so the ares evaluator caches per MapKey.
func (c Config) MapKey() string {
	c = c.withDefaults()
	return Config{Rows: c.Rows, Cols: c.Cols, BPC: c.BPC,
		ADCBits: c.ADCBits, ADCHeadroom: c.ADCHeadroom}.String()
}

// Online reports whether the online tolerance loop (detect -> remap ->
// degrade) runs during trials.
func (c Config) Online() bool { return c.DetectSigma > 0 }

// DeriveSigma returns the technology's calibrated programmed-level
// sigma — the per-device conductance variation a crossbar built from
// that technology inherits. The level model's programmed sigma is the
// same at every bits-per-cell (spacing changes, device physics does
// not), so the 1-bit model suffices.
func DeriveSigma(t envm.Tech) (float64, error) {
	lm, err := t.Levels(1)
	if err != nil {
		return 0, err
	}
	return lm.Levels[len(lm.Levels)-1].Sigma, nil
}

// dacGrid returns the write-DAC target grid for the config's BPC on
// the given technology: the programmed-level means of the envm level
// model, ascending over the normalized conductance window. nil when
// BPC is 0 (ideal analog write).
func (c Config) dacGrid(t envm.Tech) ([]float64, error) {
	if c.BPC == 0 {
		return nil, nil
	}
	lm, err := t.Levels(c.BPC)
	if err != nil {
		return nil, err
	}
	grid := make([]float64, len(lm.Levels))
	for i, g := range lm.Levels {
		grid[i] = g.Mean
	}
	return grid, nil
}

// LoadConfig reads one crossbar/ADC definition from JSON and validates
// it strictly: unknown fields, non-finite numbers, non-positive tile
// dimensions, and a zero-bit ADC are all rejected. A JSON definition
// describes physical hardware, so the programmatic "ideal" sentinels
// (ADCBits 0) are not accepted here — an ADC with no bits is a broken
// sketch, not a request for the ideal readout.
func LoadConfig(r io.Reader) (Config, error) {
	var c Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("crossbar: parsing config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	if c.ADCBits < 1 {
		return Config{}, fmt.Errorf("crossbar: ADC bits %d must be at least 1 in a hardware definition", c.ADCBits)
	}
	return c, nil
}
