package crossbar

import (
	"strings"
	"testing"
)

// FuzzCrossbarConfig fuzzes the strict hardware-definition decoder: it
// must never panic, and anything it accepts must satisfy the same
// invariants Validate promises (plus the hardware-definition extras:
// a real ADC). The seed corpus covers the rejection classes from the
// unit tests so the fuzzer starts at the interesting boundaries.
func FuzzCrossbarConfig(f *testing.F) {
	seeds := []string{
		`{"Rows":64,"Cols":32,"ADCBits":6}`,
		`{"Rows":64,"Cols":32,"ADCBits":6,"BPC":2,"VarSigma":0.03,"StuckRate":1e-4}`,
		`{"Rows":0,"Cols":32,"ADCBits":6}`,
		`{"Rows":64,"Cols":32,"ADCBits":0}`,
		`{"Rows":64,"Cols":32,"ADCBits":6,"Bogus":1}`,
		`{"Rows":64,"Cols":32,"ADCBits":6,"VarSigma":null}`,
		`{"Rows":1e9,"Cols":1e9,"ADCBits":16}`,
		`{"Rows":64,"Cols":32,"ADCBits":6,"StuckOnFrac":1}`,
		`[]`,
		`{}`,
		`nan`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		c, err := LoadConfig(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted: every structural invariant must hold.
		if v := c.Validate(); v != nil {
			t.Fatalf("LoadConfig accepted a config Validate rejects: %v (%+v from %q)", v, c, data)
		}
		if c.Rows < 1 || c.Cols < 1 {
			t.Fatalf("accepted non-positive tile %dx%d from %q", c.Rows, c.Cols, data)
		}
		if c.ADCBits < 1 {
			t.Fatalf("accepted zero-bit ADC from %q", data)
		}
		// The identity string must round-trip into a usable cache key.
		if c.String() == "" || c.MapKey() == "" {
			t.Fatalf("accepted config with empty identity from %q", data)
		}
	})
}
