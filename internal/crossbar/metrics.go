package crossbar

// Crossbar telemetry, recorded into telemetry.Default(). Handles resolve
// once at package init; recording on the trial hot path is
// allocation-free.
//
// Metric names:
//
//	crossbar.stuck.cells      stuck-at devices injected across all trials
//	crossbar.stuck.columns    stuck column drivers injected
//	crossbar.detect.hits      column segments flagged by online detection
//	crossbar.columns.remapped flagged segments repaired onto spare columns
//	crossbar.columns.zeroed   flagged segments zeroed (graceful degradation)
//	crossbar.scrub.rewrites   spare-column programming operations (endurance
//	                          spend; includes write-verify retries)
//	crossbar.adc.clips        ADC saturation events across all kernels
import "repro/internal/telemetry"

var met = struct {
	stuckCells, stuckCols   *telemetry.Counter
	detectHits              *telemetry.Counter
	colsRemapped, colsZeroed *telemetry.Counter
	scrubRewrites           *telemetry.Counter
	adcClips                *telemetry.Counter
}{
	stuckCells:    telemetry.Default().Counter("crossbar.stuck.cells"),
	stuckCols:     telemetry.Default().Counter("crossbar.stuck.columns"),
	detectHits:    telemetry.Default().Counter("crossbar.detect.hits"),
	colsRemapped:  telemetry.Default().Counter("crossbar.columns.remapped"),
	colsZeroed:    telemetry.Default().Counter("crossbar.columns.zeroed"),
	scrubRewrites: telemetry.Default().Counter("crossbar.scrub.rewrites"),
	adcClips:      telemetry.Default().Counter("crossbar.adc.clips"),
}
