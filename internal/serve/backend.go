package serve

// Backend is the evaluation engine a Server fronts. The production
// implementation (AresBackend) drives the shared ares replica pool; the
// test battery substitutes synthetic backends with controllable latency
// to exercise admission, shedding, and drain without paying for
// inference.

import (
	"context"

	"repro/internal/ares"
)

// Backend is the per-endpoint evaluation contract. Every method must be
// safe for concurrent use and must honor context cancellation; results
// must be a pure function of the arguments (the coalescing layer serves
// one computation's result to every identical concurrent request).
type Backend interface {
	// Encode reports the storage bill of cfg over the model's layers.
	Encode(ctx context.Context, cfg ares.Config) (*EncodeResponse, error)
	// Inject runs encode -> inject -> decode (no inference).
	Inject(ctx context.Context, cfg ares.Config, seed uint64) (ares.TrialStats, error)
	// Evaluate runs one full trial and measures the error delta.
	Evaluate(ctx context.Context, cfg ares.Config, seed uint64) (float64, ares.TrialStats, error)
	// Lifetime simulates one deployment of cfg under lp.
	Lifetime(ctx context.Context, cfg ares.Config, lp ares.LifetimePolicy, seed uint64) (ares.LifetimeStats, error)
}

// AresBackend serves requests from a shared MeasuredEvaluator: one
// pristine clustered snapshot, per-config encodings cached inside the
// evaluator, copy-on-corrupt model clones from the replica pool per
// in-flight trial.
type AresBackend struct {
	Ev *ares.MeasuredEvaluator
}

// NewAresBackend wraps a measured evaluator.
func NewAresBackend(ev *ares.MeasuredEvaluator) *AresBackend { return &AresBackend{Ev: ev} }

// Encode encodes every clustered layer under cfg and sums the
// per-stream storage bill across layers (stream order is the encoding's
// stream order, stable per format).
func (b *AresBackend) Encode(ctx context.Context, cfg ares.Config) (*EncodeResponse, error) {
	resp := &EncodeResponse{Config: cfg.String()}
	byName := map[string]int{}
	for _, cl := range b.Ev.Clustered() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		enc, err := ares.EncodeLayer(cl, cfg)
		if err != nil {
			return nil, err
		}
		resp.Layers++
		for _, sc := range ares.Cost(enc, cfg) {
			i, ok := byName[sc.Name]
			if !ok {
				i = len(resp.Streams)
				byName[sc.Name] = i
				resp.Streams = append(resp.Streams, StreamBill{Name: sc.Name, BPC: sc.BPC, ECC: sc.ECC})
			}
			resp.Streams[i].DataBits += sc.DataBits
			resp.Streams[i].ParityBits += sc.ParityBits
			resp.Streams[i].Cells += sc.Cells
		}
	}
	for _, s := range resp.Streams {
		resp.TotalBits += s.DataBits + s.ParityBits
		resp.TotalCells += s.Cells
	}
	return resp, nil
}

// Inject runs the corruption stages of one trial.
func (b *AresBackend) Inject(ctx context.Context, cfg ares.Config, seed uint64) (ares.TrialStats, error) {
	return b.Ev.CorruptTrial(ctx, cfg, seed)
}

// Evaluate runs one full measured trial on the replica pool.
func (b *AresBackend) Evaluate(ctx context.Context, cfg ares.Config, seed uint64) (float64, ares.TrialStats, error) {
	return b.Ev.EvalTrial(ctx, cfg, seed)
}

// Lifetime simulates one deployment.
func (b *AresBackend) Lifetime(ctx context.Context, cfg ares.Config, lp ares.LifetimePolicy, seed uint64) (ares.LifetimeStats, error) {
	return b.Ev.LifetimeTrial(ctx, cfg, lp, seed)
}
