package serve

// The HTTP surface:
//
//	POST /v1/encode    storage bill of a config (streams, bits, cells)
//	POST /v1/inject    encode -> inject -> decode corruption statistics
//	POST /v1/evaluate  one full trial: measured error delta + stats
//	POST /v1/lifetime  one simulated deployment (epochs, scrubs, floor)
//	GET  /metrics      Prometheus text-format scrape of the registry
//	GET  /healthz      200 while serving, 503 while draining
//
// Status mapping: 400 undecodable/invalid request, 405 wrong method,
// 429 + Retry-After shed by the full queue, 503 + Retry-After draining,
// 504 deadline exceeded (including client disconnect), 500 backend
// failure.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/ares"
	"repro/internal/stats"
)

// endpoint names (also the telemetry label values).
const (
	epEncode   = "encode"
	epInject   = "inject"
	epEvaluate = "evaluate"
	epLifetime = "lifetime"
)

// Handler returns the server's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/encode", s.trialHandler(epEncode))
	mux.HandleFunc("/v1/inject", s.trialHandler(epInject))
	mux.HandleFunc("/v1/evaluate", s.trialHandler(epEvaluate))
	mux.HandleFunc("/v1/lifetime", s.trialHandler(epLifetime))
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// Scrape errors past the header are client disconnects; nothing to do.
	_ = s.opt.Registry.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// trialHandler builds the handler for one trial endpoint.
func (s *Server) trialHandler(ep string) http.HandlerFunc {
	reqs, latency := s.met.endpoint(ep)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		defer latency.Since(start)
		if r.Method != http.MethodPost {
			s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: %s requires POST", r.URL.Path))
			return
		}
		req, cfg, lp, err := DecodeRequest(http.MaxBytesReader(w, r.Body, maxRequestBytes), ep == epLifetime)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		reqs.Inc()
		s.met.tenant(req.Tenant).Inc()

		timeout := s.opt.DefaultTimeout
		if req.TimeoutMS > 0 {
			timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		}
		if timeout > s.opt.MaxTimeout {
			timeout = s.opt.MaxTimeout
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		key, run := s.plan(ep, req, cfg, lp)
		val, err := s.submit(ctx, key, run)
		if err != nil {
			s.writeSubmitError(w, req.Seed, err)
			return
		}
		s.writeJSON(w, http.StatusOK, val)
	}
}

// plan builds the coalescing key and backend closure for one request.
// The key spans everything the result depends on — endpoint, the full
// config identity (cfg.String is the stable cache-key form), seed, and
// the lifetime policy — so two requests share a computation only when
// their answers are guaranteed identical.
func (s *Server) plan(ep string, req *Request, cfg ares.Config, lp ares.LifetimePolicy) (string, func(context.Context) (any, error)) {
	key := fmt.Sprintf("%s|%s|%d", ep, cfg.String(), req.Seed)
	switch ep {
	case epEncode:
		return key, func(ctx context.Context) (any, error) {
			return s.opt.Backend.Encode(ctx, cfg)
		}
	case epInject:
		return key, func(ctx context.Context) (any, error) {
			st, err := s.opt.Backend.Inject(ctx, cfg, req.Seed)
			if err != nil {
				return nil, err
			}
			return &InjectResponse{Config: cfg.String(), Seed: req.Seed, Stats: statsJSON(st)}, nil
		}
	case epEvaluate:
		return key, func(ctx context.Context) (any, error) {
			delta, st, err := s.opt.Backend.Evaluate(ctx, cfg, req.Seed)
			if err != nil {
				return nil, err
			}
			return &EvaluateResponse{Config: cfg.String(), Seed: req.Seed, DeltaErr: delta, Stats: statsJSON(st)}, nil
		}
	case epLifetime:
		key = fmt.Sprintf("%s|%gy|%gs|%de|%gf", key, lp.Years, lp.ScrubIntervalYears, lp.EvalEpochs, lp.FloorDelta)
		return key, func(ctx context.Context) (any, error) {
			ls, err := s.opt.Backend.Lifetime(ctx, cfg, lp, req.Seed)
			if err != nil {
				return nil, err
			}
			resp := &LifetimeResponse{
				Config: cfg.String(), Seed: req.Seed,
				WorstDelta: ls.WorstDelta, FinalDelta: ls.FinalDelta,
				Rewrites: ls.Rewrites, FirstViolation: ls.FirstViolation,
			}
			for _, e := range ls.Epochs {
				resp.Epochs = append(resp.Epochs, LifetimeEpochJSON{
					Epoch: e.Epoch, AgeYears: e.AgeYears, DeltaErr: e.DeltaErr,
					Faults: e.Stats.Faults, FloorViolated: e.FloorViolated,
				})
			}
			return resp, nil
		}
	}
	panic("serve: unknown endpoint " + ep) // static endpoint table; unreachable
}

// writeSubmitError maps admission-layer errors onto status codes. The
// request seed decorrelates the Retry-After hints of shed requests.
func (s *Server) writeSubmitError(w http.ResponseWriter, seed uint64, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", retryAfterSeconds(s.opt.RetryAfter, seed))
		s.writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", retryAfterSeconds(s.opt.RetryAfter, seed))
		s.writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.writeError(w, http.StatusGatewayTimeout, err)
	default:
		s.writeError(w, http.StatusInternalServerError, err)
	}
}

// retryAfterSeconds renders a Retry-After header value, jittered ±25%
// deterministically from the request seed. A campaign fleet's clients
// all hit a full queue within the same tick; an identical hint would
// march them back in lockstep and shed them again — jitter spreads the
// retry wave. Derived from the seed (not a PRNG) so a replayed request
// observes the same hint.
//
// The header has whole-second granularity, so the jittered value is
// rounded stochastically: floor, plus one with probability equal to
// the fraction (coin also seed-derived, so still deterministic).
// Nearest-integer rounding would collapse the whole ±25% envelope of
// the default 1s base back onto "1" — every factor in [0.75, 1.25)
// rounds to 1 — and quietly reinstate the lockstep wave; the
// stochastic round preserves the mean and splits clients across
// adjacent whole seconds at any base. Floor 1s: 0 invites an
// immediate retry storm.
func retryAfterSeconds(d time.Duration, seed uint64) string {
	src := stats.NewSource(seed).Fork(0x72657472_79616674) // "retr yaft"
	jittered := (0.75 + 0.5*src.Float64()) * d.Seconds()
	secs := int(jittered)
	if jittered-float64(secs) > src.Float64() {
		secs++
	}
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (s *Server) writeError(w http.ResponseWriter, code int, err error) {
	s.writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	s.met.response(code).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encode errors past the header are client disconnects.
	_ = enc.Encode(v)
}
