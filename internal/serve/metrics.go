package serve

// Server telemetry, recorded into the server's registry (the process
// default in production, a private registry in tests). Per-endpoint and
// per-tenant series use the registry's ';'-label convention so the
// Prometheus exporter renders them as real labels:
//
//	serve.queue.depth              admission-queue occupancy (gauge)
//	serve.inflight                 flights executing in the backend (gauge)
//	serve.shed                     requests rejected 429 by the full queue
//	serve.rejected.draining        requests rejected 503 during drain
//	serve.deadline.expired         queued flights whose deadline passed
//	                               before a worker picked them up (they
//	                               never reach the pool)
//	serve.coalesced                requests that joined an identical
//	                               in-flight computation
//	serve.tenants.overflow         requests attributed to tenant="other"
//	                               after the label-cardinality cap
//	serve.requests;endpoint=E      requests admitted per endpoint
//	serve.requests.tenant;tenant=T requests per tenant (capped at
//	                               maxTenantSeries distinct tenants)
//	serve.latency;endpoint=E       full handler latency per endpoint (ns)
//	serve.responses;code=NNN       responses by HTTP status

import (
	"strconv"
	"sync"

	"repro/internal/telemetry"
)

// maxTenantSeries caps per-tenant label cardinality: a scrape target
// must stay bounded no matter how many tenant names callers invent.
// Beyond the cap, requests are attributed to tenant="other".
const maxTenantSeries = 64

type metrics struct {
	reg        *telemetry.Registry
	queueDepth *telemetry.Gauge
	inflight   *telemetry.Gauge
	shed       *telemetry.Counter
	draining   *telemetry.Counter
	expired    *telemetry.Counter
	coalesced  *telemetry.Counter
	tenantOver *telemetry.Counter

	mu        sync.Mutex
	requests  map[string]*telemetry.Counter // by endpoint
	latency   map[string]*telemetry.Timer   // by endpoint
	tenants   map[string]*telemetry.Counter // by tenant, capped
	responses map[int]*telemetry.Counter    // by status code
}

func newMetrics(reg *telemetry.Registry) *metrics {
	return &metrics{
		reg:        reg,
		queueDepth: reg.Gauge("serve.queue.depth"),
		inflight:   reg.Gauge("serve.inflight"),
		shed:       reg.Counter("serve.shed"),
		draining:   reg.Counter("serve.rejected.draining"),
		expired:    reg.Counter("serve.deadline.expired"),
		coalesced:  reg.Counter("serve.coalesced"),
		tenantOver: reg.Counter("serve.tenants.overflow"),
		requests:   map[string]*telemetry.Counter{},
		latency:    map[string]*telemetry.Timer{},
		tenants:    map[string]*telemetry.Counter{},
		responses:  map[int]*telemetry.Counter{},
	}
}

func (m *metrics) endpoint(ep string) (*telemetry.Counter, *telemetry.Timer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.requests[ep]
	if !ok {
		c = m.reg.Counter("serve.requests;endpoint=" + ep)
		m.requests[ep] = c
	}
	t, ok := m.latency[ep]
	if !ok {
		t = m.reg.Timer("serve.latency;endpoint=" + ep)
		m.latency[ep] = t
	}
	return c, t
}

func (m *metrics) tenant(name string) *telemetry.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.tenants[name]
	if !ok {
		if len(m.tenants) >= maxTenantSeries {
			m.tenantOver.Inc()
			name = "other"
			if c, ok = m.tenants[name]; ok {
				return c
			}
		}
		c = m.reg.Counter("serve.requests.tenant;tenant=" + name)
		m.tenants[name] = c
	}
	return c
}

func (m *metrics) response(code int) *telemetry.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.responses[code]
	if !ok {
		c = m.reg.Counter("serve.responses;code=" + strconv.Itoa(code))
		m.responses[code] = c
	}
	return c
}
