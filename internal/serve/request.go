package serve

// Wire types and the request-config decoder.
//
// A request carries a per-tenant fault-model configuration — technology,
// bits-per-cell policy per stream, encoding, protection plan — plus the
// trial seed and an optional per-request deadline. The decoder is
// strict the way envm.LoadTech is strict: unknown fields, NaN or
// negative magnitudes, unknown technologies/encodings, and infeasible
// policies are rejected with a descriptive error instead of being
// silently defaulted, and no input may panic (pinned by
// FuzzDecodeRequest).

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/ares"
	"repro/internal/envm"
	"repro/internal/sparse"
)

// Policy is the wire form of ares.StreamPolicy.
type Policy struct {
	BPC int  `json:"bpc"`
	ECC bool `json:"ecc,omitempty"`
}

// ConfigSpec is the wire form of a complete storage configuration.
type ConfigSpec struct {
	// Tech is the technology name (envm.ByName: "MLC-CTT", "MLC-RRAM",
	// "Opt MLC-RRAM", "SLC-RRAM", or a surveyed chip label).
	Tech string `json:"tech"`
	// Encoding selects the storage format: dense|csr|bitmask|idxsync.
	Encoding string `json:"encoding"`
	// Default applies to streams without an override; bpc 0 is the
	// perfect-storage sentinel.
	Default Policy `json:"default"`
	// Overrides maps stream names ("values", "colidx", "rowcount",
	// "bitmask", "idxsync") to specific policies.
	Overrides map[string]Policy `json:"overrides,omitempty"`
	// RetentionYears evaluates the configuration at the given storage age.
	RetentionYears float64 `json:"retention_years,omitempty"`
	// ECCBlockBits overrides the SEC-DED data-block size (0 = default).
	ECCBlockBits int `json:"ecc_block_bits,omitempty"`
	// Degrade zeroes uncorrectable ECC blocks instead of cascading them.
	Degrade bool `json:"degrade,omitempty"`
}

// LifetimeSpec is the wire form of ares.LifetimePolicy.
type LifetimeSpec struct {
	Years              float64 `json:"years"`
	ScrubIntervalYears float64 `json:"scrub_interval_years,omitempty"`
	EvalEpochs         int     `json:"eval_epochs,omitempty"`
	FloorDelta         float64 `json:"floor_delta,omitempty"`
}

// Request is the body of every trial endpoint.
type Request struct {
	// Tenant attributes the request in per-tenant telemetry ("default"
	// when empty). Letters, digits, '.', '_', '-'; at most 64 bytes.
	Tenant string `json:"tenant,omitempty"`
	// Seed is the trial seed; the response is a pure function of
	// (config, seed), so replaying a request reproduces it bit-for-bit.
	Seed uint64 `json:"seed,omitempty"`
	// TimeoutMS bounds this request (0 = server default; capped at the
	// server maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Config is the fault-model configuration to evaluate.
	Config ConfigSpec `json:"config"`
	// Lifetime must be present on /v1/lifetime and absent elsewhere.
	Lifetime *LifetimeSpec `json:"lifetime,omitempty"`
}

// StatsJSON is the wire form of ares.TrialStats.
type StatsJSON struct {
	Faults         int     `json:"faults"`
	Corrected      int     `json:"corrected"`
	Detected       int     `json:"detected"`
	StructFrac     float64 `json:"struct_frac"`
	ValueNSR       float64 `json:"value_nsr"`
	Mismatch       float64 `json:"mismatch"`
	DegradedBlocks int     `json:"degraded_blocks"`
}

func statsJSON(st ares.TrialStats) StatsJSON {
	return StatsJSON{
		Faults: st.Faults, Corrected: st.Corrected, Detected: st.Detected,
		StructFrac: st.StructFrac, ValueNSR: st.ValueNSR, Mismatch: st.Mismatch,
		DegradedBlocks: st.DegradedBlocks,
	}
}

// StreamBill is the storage bill of one stream, summed over layers.
type StreamBill struct {
	Name       string `json:"name"`
	BPC        int    `json:"bpc"`
	ECC        bool   `json:"ecc"`
	DataBits   int64  `json:"data_bits"`
	ParityBits int64  `json:"parity_bits"`
	Cells      int64  `json:"cells"`
}

// EncodeResponse is the body returned by /v1/encode.
type EncodeResponse struct {
	Config     string       `json:"config"`
	Layers     int          `json:"layers"`
	Streams    []StreamBill `json:"streams"`
	TotalBits  int64        `json:"total_bits"`
	TotalCells int64        `json:"total_cells"`
}

// InjectResponse is the body returned by /v1/inject.
type InjectResponse struct {
	Config string    `json:"config"`
	Seed   uint64    `json:"seed"`
	Stats  StatsJSON `json:"stats"`
}

// EvaluateResponse is the body returned by /v1/evaluate.
type EvaluateResponse struct {
	Config   string    `json:"config"`
	Seed     uint64    `json:"seed"`
	DeltaErr float64   `json:"delta_err"`
	Stats    StatsJSON `json:"stats"`
}

// LifetimeEpochJSON is one evaluation epoch of a lifetime response.
type LifetimeEpochJSON struct {
	Epoch         int     `json:"epoch"`
	AgeYears      float64 `json:"age_years"`
	DeltaErr      float64 `json:"delta_err"`
	Faults        int     `json:"faults"`
	FloorViolated bool    `json:"floor_violated,omitempty"`
}

// LifetimeResponse is the body returned by /v1/lifetime.
type LifetimeResponse struct {
	Config         string              `json:"config"`
	Seed           uint64              `json:"seed"`
	WorstDelta     float64             `json:"worst_delta"`
	FinalDelta     float64             `json:"final_delta"`
	Rewrites       int                 `json:"rewrites"`
	FirstViolation int                 `json:"first_violation"`
	Epochs         []LifetimeEpochJSON `json:"epochs"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// parseKind maps the wire encoding names onto sparse kinds. The paper
// labels ("P+C", "CSR", "BitMask", "BitM+IdxSync") are accepted too so
// a config string can be pasted back in.
func parseKind(s string) (sparse.Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "dense", "p+c":
		return sparse.KindDense, nil
	case "csr":
		return sparse.KindCSR, nil
	case "bitmask":
		return sparse.KindBitMask, nil
	case "idxsync", "bitmask+idxsync", "bitm+idxsync":
		return sparse.KindBitMaskIdxSync, nil
	}
	return 0, fmt.Errorf("serve: unknown encoding %q (want dense|csr|bitmask|idxsync)", s)
}

// knownStreams are the stream names an override may target. An override
// aimed at a stream no encoding produces would be silently dead config;
// the decoder rejects it instead.
var knownStreams = map[string]bool{
	"values": true, "colidx": true, "rowcount": true,
	"bitmask": true, "idxsync": true,
}

// validTenant enforces the label-safe tenant charset.
func validTenant(s string) bool {
	if len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// checkFinite rejects NaN and infinities the way envm.LoadTech rejects
// broken optional fields: a non-finite magnitude is a caller bug, not a
// request for a default.
func checkFinite(name string, v float64) error {
	if math.IsNaN(v) {
		return fmt.Errorf("serve: %s is NaN", name)
	}
	if math.IsInf(v, 0) {
		return fmt.Errorf("serve: %s is infinite", name)
	}
	return nil
}

// maxRequestBytes bounds a request body; a fault-model config is a few
// hundred bytes, so anything near the cap is abuse, not a workload.
const maxRequestBytes = 1 << 20

// DecodeRequest parses and fully validates one request body. wantLifetime
// states whether the endpoint requires (true) or forbids (false) the
// lifetime section. On success the returned ares.Config (and
// LifetimePolicy, when requested) is ready for the backend; no decoded
// request can make the evaluation pipeline panic.
func DecodeRequest(r io.Reader, wantLifetime bool) (*Request, ares.Config, ares.LifetimePolicy, error) {
	var req Request
	var cfg ares.Config
	var lp ares.LifetimePolicy
	dec := json.NewDecoder(io.LimitReader(r, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, cfg, lp, fmt.Errorf("serve: parsing request: %w", err)
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	if !validTenant(req.Tenant) {
		return nil, cfg, lp, fmt.Errorf("serve: invalid tenant %q (letters, digits, '.', '_', '-'; max 64 bytes)", req.Tenant)
	}
	if req.TimeoutMS < 0 {
		return nil, cfg, lp, fmt.Errorf("serve: timeout_ms %d must not be negative", req.TimeoutMS)
	}

	spec := req.Config
	tech, err := envm.ByName(spec.Tech)
	if err != nil {
		return nil, cfg, lp, fmt.Errorf("serve: %w", err)
	}
	kind, err := parseKind(spec.Encoding)
	if err != nil {
		return nil, cfg, lp, err
	}
	if err := checkFinite("retention_years", spec.RetentionYears); err != nil {
		return nil, cfg, lp, err
	}
	if spec.RetentionYears < 0 {
		return nil, cfg, lp, fmt.Errorf("serve: retention_years %g must not be negative", spec.RetentionYears)
	}
	checkPolicy := func(name string, p Policy) error {
		if p.BPC < 0 {
			return fmt.Errorf("serve: %s bpc %d must not be negative (0 = perfect storage)", name, p.BPC)
		}
		return nil
	}
	if err := checkPolicy("default", spec.Default); err != nil {
		return nil, cfg, lp, err
	}
	cfg = ares.Config{
		Tech:           tech,
		Encoding:       kind,
		Default:        ares.StreamPolicy{BPC: spec.Default.BPC, ECC: spec.Default.ECC},
		RetentionYears: spec.RetentionYears,
		ECCBlockBits:   spec.ECCBlockBits,
		Degrade:        spec.Degrade,
	}
	if len(spec.Overrides) > 0 {
		cfg.Overrides = make(map[string]ares.StreamPolicy, len(spec.Overrides))
		for name, p := range spec.Overrides {
			if !knownStreams[name] {
				return nil, cfg, lp, fmt.Errorf("serve: unknown override stream %q (want values|colidx|rowcount|bitmask|idxsync)", name)
			}
			if err := checkPolicy("override "+name, p); err != nil {
				return nil, cfg, lp, err
			}
			cfg.Overrides[name] = ares.StreamPolicy{BPC: p.BPC, ECC: p.ECC}
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, cfg, lp, err
	}

	if wantLifetime {
		if req.Lifetime == nil {
			return nil, cfg, lp, fmt.Errorf("serve: lifetime endpoint requires a lifetime section")
		}
		ls := *req.Lifetime
		for _, f := range []struct {
			name string
			v    float64
		}{
			{"lifetime.years", ls.Years},
			{"lifetime.scrub_interval_years", ls.ScrubIntervalYears},
			{"lifetime.floor_delta", ls.FloorDelta},
		} {
			if err := checkFinite(f.name, f.v); err != nil {
				return nil, cfg, lp, err
			}
			if f.v < 0 {
				return nil, cfg, lp, fmt.Errorf("serve: %s %g must not be negative", f.name, f.v)
			}
		}
		lp = ares.LifetimePolicy{
			Years:              ls.Years,
			ScrubIntervalYears: ls.ScrubIntervalYears,
			EvalEpochs:         ls.EvalEpochs,
			FloorDelta:         ls.FloorDelta,
		}
		if err := lp.Validate(); err != nil {
			return nil, cfg, lp, err
		}
	} else if req.Lifetime != nil {
		return nil, cfg, lp, fmt.Errorf("serve: lifetime section is only valid on the lifetime endpoint")
	}
	return &req, cfg, lp, nil
}
