package serve

import (
	"strings"
	"testing"

	"repro/internal/sparse"
)

func TestDecodeRequestValid(t *testing.T) {
	in := `{
	  "tenant": "acme.prod",
	  "seed": 99,
	  "timeout_ms": 250,
	  "config": {
	    "tech": "MLC-RRAM",
	    "encoding": "BitM+IdxSync",
	    "default": {"bpc": 2, "ecc": true},
	    "overrides": {"values": {"bpc": 1}},
	    "retention_years": 3.5,
	    "ecc_block_bits": 128,
	    "degrade": true
	  }
	}`
	req, cfg, _, err := DecodeRequest(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	if req.Tenant != "acme.prod" || req.Seed != 99 || req.TimeoutMS != 250 {
		t.Errorf("request %+v", req)
	}
	if cfg.Encoding != sparse.KindBitMaskIdxSync || cfg.Tech.Name != "MLC-RRAM" {
		t.Errorf("config %s", cfg.String())
	}
	if cfg.RetentionYears != 3.5 || cfg.ECCBlockBits != 128 || !cfg.Degrade {
		t.Errorf("config extras %+v", cfg)
	}
	if p := cfg.Overrides["values"]; p.BPC != 1 || p.ECC {
		t.Errorf("override %+v", p)
	}
	if !cfg.Default.ECC || cfg.Default.BPC != 2 {
		t.Errorf("default %+v", cfg.Default)
	}
}

func TestDecodeRequestDefaultsTenant(t *testing.T) {
	req, _, _, err := DecodeRequest(strings.NewReader(
		`{"config":{"tech":"MLC-CTT","encoding":"csr","default":{"bpc":3}}}`), false)
	if err != nil {
		t.Fatal(err)
	}
	if req.Tenant != "default" {
		t.Errorf("tenant %q, want \"default\"", req.Tenant)
	}
}

func TestDecodeRequestLifetime(t *testing.T) {
	in := `{"config":{"tech":"MLC-CTT","encoding":"csr","default":{"bpc":3}},` +
		`"lifetime":{"years":10,"scrub_interval_years":2,"floor_delta":0.05}}`
	_, _, lp, err := DecodeRequest(strings.NewReader(in), true)
	if err != nil {
		t.Fatal(err)
	}
	if lp.Years != 10 || lp.ScrubIntervalYears != 2 || lp.FloorDelta != 0.05 {
		t.Errorf("policy %+v", lp)
	}
	if lp.EpochCount() != 5 {
		t.Errorf("epochs %d, want 5", lp.EpochCount())
	}
}

func TestDecodeRequestRejects(t *testing.T) {
	cases := []struct {
		name, in string
		lifetime bool
		wantSub  string
	}{
		{"nan retention", `{"config":{"tech":"MLC-CTT","encoding":"csr","default":{"bpc":3},"retention_years":1e999}}`, false, "parsing"},
		{"negative override", `{"config":{"tech":"MLC-CTT","encoding":"csr","default":{"bpc":3},"overrides":{"values":{"bpc":-2}}}}`, false, "must not be negative"},
		{"unknown override stream", `{"config":{"tech":"MLC-CTT","encoding":"csr","default":{"bpc":3},"overrides":{"wavelets":{"bpc":1}}}}`, false, "wavelets"},
		{"empty body", ``, false, "parsing"},
		{"tenant too long", `{"tenant":"` + strings.Repeat("a", 65) + `","config":{"tech":"MLC-CTT","encoding":"csr","default":{"bpc":3}}}`, false, "tenant"},
		{"scrub interval negative", `{"config":{"tech":"MLC-CTT","encoding":"csr","default":{"bpc":3}},"lifetime":{"years":5,"scrub_interval_years":-1}}`, true, "must not be negative"},
		{"epoch cap", `{"config":{"tech":"MLC-CTT","encoding":"csr","default":{"bpc":3}},"lifetime":{"years":1000000,"scrub_interval_years":0.001}}`, true, "cap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, err := DecodeRequest(strings.NewReader(tc.in), tc.lifetime)
			if err == nil {
				t.Fatalf("decoded invalid input %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// FuzzDecodeRequest pins the decoder's no-panic contract: any byte
// sequence either decodes into a configuration that passes the same
// validation the pipeline trusts, or is rejected with an error — never a
// panic, never a NaN or negative magnitude smuggled through.
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{"config":{"tech":"MLC-CTT","encoding":"csr","default":{"bpc":3}}}`), false)
	f.Add([]byte(`{"tenant":"acme","seed":7,"config":{"tech":"MLC-RRAM","encoding":"bitmask","default":{"bpc":2,"ecc":true},"overrides":{"values":{"bpc":1}}}}`), false)
	f.Add([]byte(`{"config":{"tech":"SLC-RRAM","encoding":"dense","default":{"bpc":1}},"lifetime":{"years":10,"scrub_interval_years":2}}`), true)
	f.Add([]byte(`{"config":{"tech":"MLC-CTT","encoding":"csr","default":{"bpc":-3}}}`), false)
	f.Add([]byte(`{"config":{"tech":"MLC-CTT","encoding":"csr","default":{"bpc":3},"retention_years":-1}}`), false)
	f.Add([]byte(`{"timeout_ms":-1}`), false)
	f.Add([]byte(`{"config":{"tech":"","encoding":""}}`), true)
	f.Add([]byte(`null`), false)
	f.Fuzz(func(t *testing.T, data []byte, lifetime bool) {
		req, cfg, lp, err := DecodeRequest(strings.NewReader(string(data)), lifetime)
		if err != nil {
			return
		}
		// Whatever decodes must satisfy the pipeline's own validators and
		// the wire invariants the server relies on.
		if req.Tenant == "" || !validTenant(req.Tenant) {
			t.Fatalf("accepted tenant %q", req.Tenant)
		}
		if req.TimeoutMS < 0 {
			t.Fatalf("accepted timeout_ms %d", req.TimeoutMS)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("accepted config that fails Validate: %v", err)
		}
		if cfg.RetentionYears < 0 {
			t.Fatalf("accepted retention %g", cfg.RetentionYears)
		}
		if lifetime {
			if err := lp.Validate(); err != nil {
				t.Fatalf("accepted lifetime policy that fails Validate: %v", err)
			}
		}
	})
}
