package serve

// BenchmarkServeLoad is the closed-loop load generator behind
// `make bench-serve`: a fixed fleet of clients fires evaluate requests
// at a server backed by the real replica pool, each client issuing its
// next request the moment the previous one answers. Reported metrics
// (landing in BENCH_serve.json):
//
//	req/s   completed requests per second
//	p99-ms  99th-percentile end-to-end request latency
//
// Seeds cycle through a small range, so the run exercises the
// coalescing and pool-cache paths the way a real tenant mix would.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"
)

func BenchmarkServeLoad(b *testing.B) {
	ev := getSoakEvaluator(b)
	s := New(Options{
		Backend:        NewAresBackend(ev),
		QueueDepth:     256,
		DefaultTimeout: 60 * time.Second,
	})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	const clients = 8
	var (
		mu   sync.Mutex
		lats []time.Duration
	)
	work := make(chan int, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, 64)
			for i := range work {
				body := soakBody(fmt.Sprintf("bench-%d", i%4), i%len(soakConfigs), uint64(i%12))
				start := time.Now()
				resp, data := post(b, hs.URL+"/v1/evaluate", body)
				local = append(local, time.Since(start))
				if resp.StatusCode != http.StatusOK {
					b.Errorf("status %d: %s", resp.StatusCode, data)
				}
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}()
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	b.StopTimer()

	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		p99 := lats[len(lats)*99/100]
		if len(lats)*99/100 >= len(lats) {
			p99 = lats[len(lats)-1]
		}
		b.ReportMetric(float64(p99)/float64(time.Millisecond), "p99-ms")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}
