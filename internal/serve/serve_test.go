package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ares"
	"repro/internal/telemetry"
)

// stubBackend is a controllable Backend: pure-function results derived
// from the seed, an optional entry signal, and an optional block that
// holds every trial until released (or its context ends).
type stubBackend struct {
	entered chan struct{} // receives one send per backend call start
	block   chan struct{} // when non-nil, calls wait here (or on ctx)
	calls   atomic.Int64
}

func (b *stubBackend) wait(ctx context.Context) error {
	b.calls.Add(1)
	if b.entered != nil {
		select {
		case b.entered <- struct{}{}:
		default:
		}
	}
	if b.block != nil {
		select {
		case <-b.block:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

func (b *stubBackend) Encode(ctx context.Context, cfg ares.Config) (*EncodeResponse, error) {
	if err := b.wait(ctx); err != nil {
		return nil, err
	}
	return &EncodeResponse{Config: cfg.String(), Layers: 1}, nil
}

func (b *stubBackend) Inject(ctx context.Context, cfg ares.Config, seed uint64) (ares.TrialStats, error) {
	if err := b.wait(ctx); err != nil {
		return ares.TrialStats{}, err
	}
	return ares.TrialStats{Faults: int(seed % 17)}, nil
}

func (b *stubBackend) Evaluate(ctx context.Context, cfg ares.Config, seed uint64) (float64, ares.TrialStats, error) {
	if err := b.wait(ctx); err != nil {
		return 0, ares.TrialStats{}, err
	}
	return float64(seed%100) / 1000, ares.TrialStats{Faults: int(seed % 17)}, nil
}

func (b *stubBackend) Lifetime(ctx context.Context, cfg ares.Config, lp ares.LifetimePolicy, seed uint64) (ares.LifetimeStats, error) {
	if err := b.wait(ctx); err != nil {
		return ares.LifetimeStats{}, err
	}
	return ares.LifetimeStats{FinalDelta: float64(seed%10) / 100, FirstViolation: -1, Rewrites: lp.EpochCount() - 1}, nil
}

// newTestServer builds a Server on a private registry plus an HTTP
// fixture around it. Callers must shut both down.
func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	opt.Registry = reg
	if opt.RetryAfter == 0 {
		opt.RetryAfter = 2 * time.Second
	}
	s := New(opt)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, hs, reg
}

// body builds a minimal valid request body.
func body(tenant string, seed uint64, timeoutMS int64) string {
	return fmt.Sprintf(`{"tenant":%q,"seed":%d,"timeout_ms":%d,"config":{"tech":"MLC-CTT","encoding":"csr","default":{"bpc":3}}}`,
		tenant, seed, timeoutMS)
}

func post(t testing.TB, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestEndpointsBasic(t *testing.T) {
	_, hs, reg := newTestServer(t, Options{Backend: &stubBackend{}, Workers: 2})

	resp, data := post(t, hs.URL+"/v1/evaluate", body("acme", 42, 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate: %d: %s", resp.StatusCode, data)
	}
	var ev EvaluateResponse
	if err := json.Unmarshal(data, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.DeltaErr != 0.042 || ev.Seed != 42 {
		t.Errorf("evaluate response %+v", ev)
	}
	if !strings.Contains(ev.Config, "CSR@MLC-CTT") {
		t.Errorf("config echo %q", ev.Config)
	}

	resp, data = post(t, hs.URL+"/v1/inject", body("acme", 5, 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inject: %d: %s", resp.StatusCode, data)
	}
	var inj InjectResponse
	if err := json.Unmarshal(data, &inj); err != nil {
		t.Fatal(err)
	}
	if inj.Stats.Faults != 5 {
		t.Errorf("inject stats %+v", inj.Stats)
	}

	resp, data = post(t, hs.URL+"/v1/encode", body("acme", 0, 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("encode: %d: %s", resp.StatusCode, data)
	}

	lt := `{"tenant":"acme","seed":3,"config":{"tech":"MLC-CTT","encoding":"bitmask","default":{"bpc":2}},` +
		`"lifetime":{"years":10,"scrub_interval_years":2.5}}`
	resp, data = post(t, hs.URL+"/v1/lifetime", lt)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lifetime: %d: %s", resp.StatusCode, data)
	}
	var lr LifetimeResponse
	if err := json.Unmarshal(data, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Rewrites != 3 { // ceil(10/2.5)=4 epochs -> 3 rewrites
		t.Errorf("lifetime rewrites %d", lr.Rewrites)
	}

	// Health and metrics.
	hresp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", hresp.StatusCode)
	}
	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mdata, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`serve_requests{endpoint="evaluate"} 1`,
		`serve_requests_tenant{tenant="acme"} 4`,
		`serve_responses{code="200"} 5`, // 4 trial endpoints + healthz
		"# TYPE serve_latency_ns summary",
	} {
		if !strings.Contains(string(mdata), want) {
			t.Errorf("metrics scrape missing %q:\n%s", want, mdata)
		}
	}
	_ = reg
}

func TestBadRequests(t *testing.T) {
	_, hs, _ := newTestServer(t, Options{Backend: &stubBackend{}, Workers: 1})
	cases := []struct {
		name, path, body string
	}{
		{"syntax", "/v1/evaluate", `{"config":`},
		{"unknown field", "/v1/evaluate", `{"config":{"tech":"MLC-CTT","encoding":"csr","default":{"bpc":3}},"bogus":1}`},
		{"unknown tech", "/v1/evaluate", `{"config":{"tech":"FlashMagic","encoding":"csr","default":{"bpc":3}}}`},
		{"unknown encoding", "/v1/evaluate", `{"config":{"tech":"MLC-CTT","encoding":"coo","default":{"bpc":3}}}`},
		{"negative bpc", "/v1/evaluate", `{"config":{"tech":"MLC-CTT","encoding":"csr","default":{"bpc":-1}}}`},
		{"infeasible bpc", "/v1/evaluate", `{"config":{"tech":"MLC-CTT","encoding":"csr","default":{"bpc":9}}}`},
		{"negative retention", "/v1/evaluate", `{"config":{"tech":"MLC-CTT","encoding":"csr","default":{"bpc":3},"retention_years":-2}}`},
		{"negative timeout", "/v1/evaluate", `{"timeout_ms":-5,"config":{"tech":"MLC-CTT","encoding":"csr","default":{"bpc":3}}}`},
		{"bad tenant", "/v1/evaluate", `{"tenant":"a b!","config":{"tech":"MLC-CTT","encoding":"csr","default":{"bpc":3}}}`},
		{"lifetime on evaluate", "/v1/evaluate", `{"config":{"tech":"MLC-CTT","encoding":"csr","default":{"bpc":3}},"lifetime":{"years":1}}`},
		{"lifetime missing", "/v1/lifetime", `{"config":{"tech":"MLC-CTT","encoding":"csr","default":{"bpc":3}}}`},
		{"lifetime negative years", "/v1/lifetime", `{"config":{"tech":"MLC-CTT","encoding":"csr","default":{"bpc":3}},"lifetime":{"years":-1}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := post(t, hs.URL+tc.path, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("%s: got %d (%s), want 400", tc.name, resp.StatusCode, data)
			}
			var er ErrorResponse
			if err := json.Unmarshal(data, &er); err != nil || er.Error == "" {
				t.Errorf("%s: error body %q", tc.name, data)
			}
		})
	}
	// Wrong method.
	resp, err := http.Get(hs.URL + "/v1/evaluate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on trial endpoint: %d, want 405", resp.StatusCode)
	}
}

// TestCoalescing proves identical concurrent requests share one backend
// computation and all receive its result.
func TestCoalescing(t *testing.T) {
	bk := &stubBackend{entered: make(chan struct{}, 1), block: make(chan struct{})}
	_, hs, reg := newTestServer(t, Options{Backend: bk, Workers: 2, QueueDepth: 8})

	const n = 4
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	codes := make([]int, n)
	launch := func(i int) {
		defer wg.Done()
		resp, data := post(t, hs.URL+"/v1/evaluate", body("acme", 7, 5000))
		codes[i], bodies[i] = resp.StatusCode, data
	}
	wg.Add(1)
	go launch(0)
	<-bk.entered // leader is inside the backend
	coalesced := reg.Counter("serve.coalesced")
	for i := 1; i < n; i++ {
		wg.Add(1)
		go launch(i)
	}
	// Wait until every follower has attached to the in-flight twin.
	deadline := time.Now().Add(5 * time.Second)
	for coalesced.Value() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d followers coalesced", coalesced.Value())
		}
		time.Sleep(time.Millisecond)
	}
	close(bk.block)
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d body differs:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if got := bk.calls.Load(); got != 1 {
		t.Errorf("backend ran %d times for %d identical requests, want 1", got, n)
	}
}
