// Package serve is the long-lived batched fault-evaluation server: the
// interactive front end of the MaxNVM pipeline. Many concurrent callers
// probe what-if fault scenarios — encode, inject, evaluate, lifetime —
// against one shared pristine weight snapshot, with the measurement tail
// running on the ares replica pool (copy-on-corrupt clones per in-flight
// trial).
//
// Admission contract (DESIGN.md §15):
//
//   - Every trial request passes a bounded admission queue. A full
//     queue sheds the request immediately with 429 + Retry-After —
//     callers get backpressure, the pool never builds unbounded debt.
//   - Identical in-flight requests (same endpoint, config, seed) are
//     coalesced onto one computation: results are pure functions of
//     (config, seed), so every waiter receives the same answer and the
//     pool does the work once.
//   - Per-request deadlines propagate via context. A request whose
//     deadline expires while still queued is answered 504 without ever
//     reaching the backend; a request abandoned by every waiter is
//     cancelled mid-trial.
//   - Draining (SIGTERM) stops admission with 503, completes queued and
//     in-flight trials, and only then lets the process exit; a drain
//     deadline cancels whatever is still running, cleanly.
package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Errors the admission layer reports; the HTTP layer maps them to
// status codes.
var (
	// ErrOverloaded: the admission queue is full (429).
	ErrOverloaded = errors.New("serve: admission queue full")
	// ErrDraining: the server is shutting down (503).
	ErrDraining = errors.New("serve: draining")
)

// Options configures a Server.
type Options struct {
	// Backend evaluates admitted requests. Required.
	Backend Backend
	// QueueDepth bounds the admission queue (default 64).
	QueueDepth int
	// Workers is the number of goroutines draining the queue into the
	// backend (default GOMAXPROCS — matching the replica-pool capacity,
	// so admitted work never queues twice).
	Workers int
	// DefaultTimeout bounds requests that carry no timeout_ms
	// (default 10s).
	DefaultTimeout time.Duration
	// MaxTimeout caps any requested deadline (default 60s).
	MaxTimeout time.Duration
	// RetryAfter is the hint returned with 429/503, before the ±25%
	// per-request-seed jitter that decorrelates fleet retries
	// (default 1s).
	RetryAfter time.Duration
	// Registry receives server telemetry (default telemetry.Default()).
	Registry *telemetry.Registry
}

func (o *Options) fill() {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 10 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 60 * time.Second
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.Registry == nil {
		o.Registry = telemetry.Default()
	}
}

// flight is one admitted computation plus everyone waiting on it.
type flight struct {
	key    string
	run    func(context.Context) (any, error)
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	val    any
	err    error
	// waiters is guarded by Server.fmu; when it reaches zero the
	// computation is cancelled (nobody is listening).
	waiters int
}

// Server is the admission/batching layer between the HTTP handlers and
// the backend.
type Server struct {
	opt Options
	met *metrics

	queue chan *flight

	fmu     sync.Mutex
	flights map[string]*flight

	inflight  sync.WaitGroup // admitted flights not yet finished
	workersWG sync.WaitGroup
	stop      chan struct{} // closed by Shutdown after the drain
	stopOnce  sync.Once
	draining  atomic.Bool

	baseCtx    context.Context // parent of every flight context
	hardCancel context.CancelFunc
}

// New builds a Server and starts its worker pool.
func New(opt Options) *Server {
	if opt.Backend == nil {
		panic("serve: Options.Backend is required")
	}
	opt.fill()
	s := &Server{
		opt:     opt,
		met:     newMetrics(opt.Registry),
		queue:   make(chan *flight, opt.QueueDepth),
		flights: map[string]*flight{},
		stop:    make(chan struct{}),
	}
	s.baseCtx, s.hardCancel = context.WithCancel(context.Background())
	s.workersWG.Add(opt.Workers)
	for i := 0; i < opt.Workers; i++ {
		go s.worker()
	}
	return s
}

// submit admits one computation (or joins an identical in-flight one)
// and waits for its result. ctx carries the caller's deadline; key
// identifies the computation for coalescing.
func (s *Server) submit(ctx context.Context, key string, run func(context.Context) (any, error)) (any, error) {
	s.fmu.Lock()
	// The draining check and the in-flight registration share the lock
	// Shutdown takes to flip draining, so no flight can be admitted
	// concurrently with (or after) the drain's WaitGroup wait.
	if s.draining.Load() {
		s.fmu.Unlock()
		s.met.draining.Inc()
		return nil, ErrDraining
	}
	if f, ok := s.flights[key]; ok {
		f.waiters++
		s.fmu.Unlock()
		s.met.coalesced.Inc()
		return s.await(ctx, f)
	}
	fctx, cancel := context.WithCancel(s.baseCtx)
	if d, ok := ctx.Deadline(); ok {
		fctx, cancel = context.WithDeadline(s.baseCtx, d)
	}
	f := &flight{
		key: key, run: run,
		ctx: fctx, cancel: cancel,
		done:    make(chan struct{}),
		waiters: 1,
	}
	s.flights[key] = f
	s.inflight.Add(1)
	s.fmu.Unlock()

	select {
	case s.queue <- f:
		s.met.queueDepth.Add(1)
	default:
		// Queue full: shed. finish() also releases any waiter that
		// attached between registration and here.
		s.met.shed.Inc()
		s.finish(f, nil, ErrOverloaded)
		return nil, ErrOverloaded
	}
	return s.await(ctx, f)
}

// await blocks until the flight finishes or the caller's context ends;
// an abandoning caller detaches so a fully abandoned flight is
// cancelled.
func (s *Server) await(ctx context.Context, f *flight) (any, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		s.fmu.Lock()
		f.waiters--
		abandoned := f.waiters == 0
		s.fmu.Unlock()
		if abandoned {
			f.cancel()
		}
		return nil, ctx.Err()
	}
}

// finish publishes the result, releases every waiter, and retires the
// flight from the coalescing map.
func (s *Server) finish(f *flight, val any, err error) {
	s.fmu.Lock()
	if s.flights[f.key] == f {
		delete(s.flights, f.key)
	}
	s.fmu.Unlock()
	f.val, f.err = val, err
	close(f.done)
	f.cancel()
	s.inflight.Done()
}

// execute runs one dequeued flight against the backend. A flight whose
// context already ended (deadline passed while queued, or every waiter
// left) is answered without touching the backend.
func (s *Server) execute(f *flight) {
	s.met.queueDepth.Add(-1)
	if err := f.ctx.Err(); err != nil {
		s.met.expired.Inc()
		s.finish(f, nil, err)
		return
	}
	s.met.inflight.Add(1)
	val, err := f.run(f.ctx)
	s.met.inflight.Add(-1)
	s.finish(f, val, err)
}

func (s *Server) worker() {
	defer s.workersWG.Done()
	for {
		select {
		case f := <-s.queue:
			s.execute(f)
		case <-s.stop:
			// Drain whatever is still queued, then exit.
			for {
				select {
				case f := <-s.queue:
					s.execute(f)
				default:
					return
				}
			}
		}
	}
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains the server: admission stops immediately (ErrDraining
// / 503), queued and in-flight trials run to completion, and the worker
// pool exits. If ctx ends first, every remaining flight is cancelled
// (trials abort at their next cancellation point and waiters get the
// cancellation error) and Shutdown returns ctx.Err() after they unwind.
// Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.fmu.Lock()
	s.draining.Store(true)
	s.fmu.Unlock()

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.hardCancel()
		<-done
	}
	s.stopOnce.Do(func() { close(s.stop) })
	s.workersWG.Wait()
	return err
}
