package serve

// The soak battery: N goroutines fire a mixed-tenant request stream —
// random endpoints, configs, seeds, and client-side cancellations —
// at a server backed by the real replica pool, under -race via the
// race-fast tier. Afterwards nothing may be leaked (no checked-out
// replicas, no stuck gauges) and a seed-pinned subset of the evaluate
// responses must be bit-identical to the serial evaluator.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ares"
	"repro/internal/dnn"
	"repro/internal/telemetry"
	"repro/internal/train"
)

// Shared trained evaluator for the soak and bench suites (training once
// keeps the battery fast); mirrors the ares measured-test fixture.
var (
	soakOnce sync.Once
	soakEv   *ares.MeasuredEvaluator
	soakErr  error
)

func getSoakEvaluator(t testing.TB) *ares.MeasuredEvaluator {
	t.Helper()
	soakOnce.Do(func() {
		trainDS := train.Synthesize(train.SynthConfig{N: 600, Seed: 10, ProtoSeed: 77})
		testDS := train.Synthesize(train.SynthConfig{N: 200, Seed: 11, ProtoSeed: 77})
		m := dnn.TinyCNN()
		m.InitWeights(42)
		if _, err := train.Train(m, trainDS, train.Config{Epochs: 6, Seed: 1}); err != nil {
			soakErr = err
			return
		}
		soakEv, soakErr = ares.NewMeasuredEvaluator(m, testDS, 5)
	})
	if soakErr != nil {
		t.Fatal(soakErr)
	}
	return soakEv
}

// soakConfigs is the tenant config mix: distinct technologies,
// encodings, and protection plans, all of which actually corrupt cells
// (no perfect-storage sentinel), so trials exercise the full
// encode/inject/decode/measure path.
var soakConfigs = []string{
	`{"tech":"MLC-CTT","encoding":"csr","default":{"bpc":3}}`,
	`{"tech":"MLC-CTT","encoding":"csr","default":{"bpc":3},"overrides":{"rowcount":{"bpc":3,"ecc":true},"colidx":{"bpc":3,"ecc":true}}}`,
	`{"tech":"MLC-RRAM","encoding":"bitmask","default":{"bpc":2,"ecc":true}}`,
	`{"tech":"MLC-CTT","encoding":"idxsync","default":{"bpc":2},"retention_years":3}`,
}

func soakBody(tenant string, cfgIdx int, seed uint64) string {
	return fmt.Sprintf(`{"tenant":%q,"seed":%d,"timeout_ms":30000,"config":%s}`,
		tenant, seed, soakConfigs[cfgIdx])
}

func TestSoakMixedTenants(t *testing.T) {
	ev := getSoakEvaluator(t)
	reg := telemetry.NewRegistry()
	s := New(Options{
		Backend:  NewAresBackend(ev),
		Registry: reg,
		Workers:  4, QueueDepth: 64,
		DefaultTimeout: 30 * time.Second,
	})
	hs := newSoakHTTP(t, s)

	const (
		goroutines = 8
		iters      = 16
		seedRange  = 6 // small on purpose: collisions exercise coalescing
	)
	// deltas collects every successful evaluate response keyed by
	// (config, seed); the map doubles as a consistency check (two
	// responses for one key must agree exactly) and as the seed-pinned
	// subset replayed serially below.
	var (
		dmu    sync.Mutex
		deltas = map[[2]int]float64{}
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			client := &http.Client{}
			for i := 0; i < iters; i++ {
				tenant := fmt.Sprintf("tenant-%d", rng.Intn(5))
				cfgIdx := rng.Intn(len(soakConfigs))
				seed := uint64(rng.Intn(seedRange))
				path, bodyStr := "/v1/evaluate", soakBody(tenant, cfgIdx, seed)
				switch r := rng.Float64(); {
				case r < 0.15:
					path = "/v1/inject"
				case r < 0.25:
					path = "/v1/encode"
				case r < 0.35:
					path = "/v1/lifetime"
					bodyStr = fmt.Sprintf(`{"tenant":%q,"seed":%d,"timeout_ms":30000,"config":%s,"lifetime":{"years":8,"scrub_interval_years":4}}`,
						tenant, seed, soakConfigs[cfgIdx])
				}

				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if rng.Float64() < 0.15 {
					// Randomized client abandonment: a deadline short
					// enough to usually fire mid-flight.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(3000))*time.Microsecond)
				}
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, hs+path, strings.NewReader(bodyStr))
				if err != nil {
					t.Error(err)
					cancel()
					continue
				}
				resp, err := client.Do(req)
				if err != nil {
					cancel() // client-side cancellation; the server must simply survive it
					continue
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				cancel()
				switch resp.StatusCode {
				case http.StatusOK:
					if path == "/v1/evaluate" {
						var evr EvaluateResponse
						if err := json.Unmarshal(data, &evr); err != nil {
							t.Errorf("evaluate body: %v", err)
							continue
						}
						key := [2]int{cfgIdx, int(seed)}
						dmu.Lock()
						if prev, ok := deltas[key]; ok && prev != evr.DeltaErr {
							t.Errorf("config %d seed %d: deltas %v and %v disagree", cfgIdx, seed, prev, evr.DeltaErr)
						}
						deltas[key] = evr.DeltaErr
						dmu.Unlock()
					}
				case http.StatusTooManyRequests, http.StatusGatewayTimeout:
					// Load shed or deadline: legitimate under soak pressure.
				default:
					t.Errorf("%s: unexpected status %d: %s", path, resp.StatusCode, data)
				}
			}
		}(g)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Nothing leaked: no replica still checked out of the pool, no stuck
	// admission gauges.
	if busy := telemetry.Default().Gauge("ares.replicas.busy").Value(); busy != 0 {
		t.Errorf("ares.replicas.busy = %v after drain, want 0 (leaked replica)", busy)
	}
	for _, g := range []string{"serve.queue.depth", "serve.inflight"} {
		if v := reg.Gauge(g).Value(); v != 0 {
			t.Errorf("%s = %v after drain, want 0", g, v)
		}
	}

	// Bit-identical replay: every delta the server returned must equal
	// the serial evaluator's answer for the same (config, seed) exactly.
	if len(deltas) == 0 {
		t.Fatal("soak produced no successful evaluate responses")
	}
	checked := 0
	for key, got := range deltas {
		if checked >= 8 {
			break
		}
		checked++
		_, cfg, _, err := DecodeRequest(strings.NewReader(soakBody("t", key[0], uint64(key[1]))), false)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := ev.EvalTrialSerial(context.Background(), cfg, uint64(key[1]))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("config %d seed %d: server delta %v != serial delta %v", key[0], key[1], got, want)
		}
	}
	t.Logf("soak: %d distinct (config,seed) evaluate results, %d replayed serially", len(deltas), checked)
}

// newSoakHTTP serves s.Handler() on a loopback listener and returns the
// base URL. Unlike newTestServer it does not own s's shutdown — the
// soak test drains explicitly.
func newSoakHTTP(t *testing.T, s *Server) string {
	t.Helper()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return hs.URL
}
