package serve

// Satellite battery for the admission contract: bounded queue depth with
// 429 + Retry-After on overflow, deadline-expired requests answered
// without ever reaching the backend, and graceful drain that completes
// in-flight work while rejecting new requests with 503.

import (
	"context"
	"net/http"
	"strconv"
	"testing"
	"time"
)

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShed429 fills one worker and a depth-2 queue, then proves the next
// distinct request is shed with 429 + Retry-After while the queue gauge
// never exceeds its bound — and that shed requests succeed on retry once
// the queue drains.
func TestShed429(t *testing.T) {
	bk := &stubBackend{entered: make(chan struct{}, 1), block: make(chan struct{})}
	_, hs, reg := newTestServer(t, Options{
		Backend: bk, Workers: 1, QueueDepth: 2, RetryAfter: 7 * time.Second,
	})
	depth := reg.Gauge("serve.queue.depth")
	shed := reg.Counter("serve.shed")

	// Seed 1 occupies the single worker.
	done := make(chan int, 3)
	go func() {
		resp, _ := post(t, hs.URL+"/v1/evaluate", body("acme", 1, 60000))
		done <- resp.StatusCode
	}()
	<-bk.entered

	// Seeds 2 and 3 fill the queue.
	for seed := uint64(2); seed <= 3; seed++ {
		seed := seed
		go func() {
			resp, _ := post(t, hs.URL+"/v1/evaluate", body("acme", seed, 60000))
			done <- resp.StatusCode
		}()
	}
	waitFor(t, "queue to fill", func() bool { return depth.Value() == 2 })

	// Seed 4 must be shed immediately.
	resp, data := post(t, hs.URL+"/v1/evaluate", body("acme", 4, 60000))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: %d: %s", resp.StatusCode, data)
	}
	// Retry-After is the configured 7s jittered ±25% from the request
	// seed: inside [5, 9], and bit-stable for the same seed.
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 5 || ra > 9 {
		t.Errorf("Retry-After = %q, want within [5, 9]", resp.Header.Get("Retry-After"))
	} else if want := retryAfterSeconds(7*time.Second, 4); strconv.Itoa(ra) != want {
		t.Errorf("Retry-After = %d not deterministic for seed 4 (want %s)", ra, want)
	}
	if shed.Value() != 1 {
		t.Errorf("shed counter = %d, want 1", shed.Value())
	}
	if depth.Value() > 2 {
		t.Errorf("queue depth %v exceeded bound 2", depth.Value())
	}

	// Release the backend: the held requests complete, and the shed seed
	// succeeds on retry.
	close(bk.block)
	for i := 0; i < 3; i++ {
		if code := <-done; code != http.StatusOK {
			t.Errorf("held request finished %d, want 200", code)
		}
	}
	resp, data = post(t, hs.URL+"/v1/evaluate", body("acme", 4, 60000))
	if resp.StatusCode != http.StatusOK {
		t.Errorf("retry after shed: %d: %s", resp.StatusCode, data)
	}
	waitFor(t, "queue to drain", func() bool { return depth.Value() == 0 })
}

// TestDeadlineExpiredNeverReachesBackend queues a request behind a stuck
// worker with a deadline too short to survive the wait, and proves it is
// answered 504 without the backend ever seeing it.
func TestDeadlineExpiredNeverReachesBackend(t *testing.T) {
	bk := &stubBackend{entered: make(chan struct{}, 1), block: make(chan struct{})}
	_, hs, reg := newTestServer(t, Options{Backend: bk, Workers: 1, QueueDepth: 4})
	expired := reg.Counter("serve.deadline.expired")

	// Seed 1 occupies the worker.
	done := make(chan int, 1)
	go func() {
		resp, _ := post(t, hs.URL+"/v1/evaluate", body("acme", 1, 60000))
		done <- resp.StatusCode
	}()
	<-bk.entered
	callsBefore := bk.calls.Load()

	// Seed 2 queues with a 30ms deadline it cannot survive.
	resp, data := post(t, hs.URL+"/v1/evaluate", body("acme", 2, 30))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired request: %d: %s", resp.StatusCode, data)
	}

	// Unstick the worker; it must discard the expired flight without
	// calling the backend.
	close(bk.block)
	if code := <-done; code != http.StatusOK {
		t.Errorf("held request finished %d, want 200", code)
	}
	waitFor(t, "expired flight to retire", func() bool { return expired.Value() == 1 })
	if got := bk.calls.Load(); got != callsBefore {
		t.Errorf("backend calls went %d -> %d; expired request reached the pool", callsBefore, got)
	}
}

// TestDrain proves Shutdown completes in-flight requests, rejects new
// ones with 503 + Retry-After, flips /healthz, and returns nil.
func TestDrain(t *testing.T) {
	bk := &stubBackend{entered: make(chan struct{}, 1), block: make(chan struct{})}
	s, hs, reg := newTestServer(t, Options{Backend: bk, Workers: 2, QueueDepth: 8})

	done := make(chan int, 1)
	go func() {
		resp, _ := post(t, hs.URL+"/v1/evaluate", body("acme", 1, 60000))
		done <- resp.StatusCode
	}()
	<-bk.entered

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	waitFor(t, "draining flag", s.Draining)

	// New work is rejected 503 with Retry-After; health reports draining.
	resp, data := post(t, hs.URL+"/v1/evaluate", body("acme", 2, 60000))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	hresp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: %d, want 503", hresp.StatusCode)
	}
	if reg.Counter("serve.rejected.draining").Value() != 1 {
		t.Errorf("rejected.draining = %d, want 1", reg.Counter("serve.rejected.draining").Value())
	}

	// The in-flight request still completes successfully.
	close(bk.block)
	if code := <-done; code != http.StatusOK {
		t.Errorf("in-flight request finished %d, want 200", code)
	}
	if err := <-shutdownErr; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	if reg.Gauge("serve.inflight").Value() != 0 || reg.Gauge("serve.queue.depth").Value() != 0 {
		t.Errorf("gauges not zero after drain: inflight=%v depth=%v",
			reg.Gauge("serve.inflight").Value(), reg.Gauge("serve.queue.depth").Value())
	}
}

// TestDrainDeadlineCancelsStuckTrial proves an expired drain context
// hard-cancels whatever is still running: the stuck trial aborts at its
// cancellation point, its waiter gets 504, and Shutdown reports the
// context error instead of hanging.
func TestDrainDeadlineCancelsStuckTrial(t *testing.T) {
	// No release channel is ever closed: the trial only ends via ctx.
	bk := &stubBackend{entered: make(chan struct{}, 1), block: make(chan struct{})}
	s, hs, _ := newTestServer(t, Options{Backend: bk, Workers: 1, QueueDepth: 2})

	done := make(chan int, 1)
	go func() {
		resp, _ := post(t, hs.URL+"/v1/evaluate", body("acme", 1, 60000))
		done <- resp.StatusCode
	}()
	<-bk.entered

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Errorf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
	if code := <-done; code != http.StatusGatewayTimeout {
		t.Errorf("stuck trial's waiter got %d, want 504", code)
	}
}

// TestRetryAfterJitterEnvelope: the hint is deterministic per seed,
// stays within ±25% of the configured duration, floors at 1s, and
// actually spreads across seeds (the anti-stampede point).
func TestRetryAfterJitterEnvelope(t *testing.T) {
	distinct := map[string]bool{}
	for seed := uint64(0); seed < 64; seed++ {
		v := retryAfterSeconds(20*time.Second, seed)
		if v != retryAfterSeconds(20*time.Second, seed) {
			t.Fatalf("seed %d: hint not deterministic", seed)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 15 || n > 25 {
			t.Fatalf("seed %d: Retry-After %q outside [15, 25]", seed, v)
		}
		distinct[v] = true
	}
	if len(distinct) < 4 {
		t.Fatalf("64 seeds produced only %d distinct hints; jitter is not spreading retries", len(distinct))
	}
	// Sub-second bases floor at 1, never 0.
	for seed := uint64(0); seed < 16; seed++ {
		if v := retryAfterSeconds(300*time.Millisecond, seed); v != "1" {
			t.Fatalf("seed %d: sub-second base gave %q, want floor 1", seed, v)
		}
	}
	// The default 1s base must itself spread: with nearest-integer
	// rounding every ±25% factor of 1s collapsed back to "1", making
	// the advertised decorrelation a no-op exactly where it matters
	// most. Stochastic rounding splits clients across 1s and 2s.
	oneSec := map[string]bool{}
	for seed := uint64(0); seed < 256; seed++ {
		v := retryAfterSeconds(time.Second, seed)
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 2 {
			t.Fatalf("seed %d: 1s base gave %q, want 1 or 2", seed, v)
		}
		oneSec[v] = true
	}
	if len(oneSec) < 2 {
		t.Fatalf("256 seeds at the 1s default produced only %v; jitter is still a no-op", oneSec)
	}
}
