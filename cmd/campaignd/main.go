// Command campaignd coordinates fault-injection campaign fleets: it
// cuts a campaign into shards (plan), runs lease-claiming workers
// against the shared fleet directory (work), folds completed shard WALs
// into one deterministic result (merge), and reports live shard state
// (status).
//
// A fleet directory is the only coordination channel: any number of
// worker processes — on one machine or many sharing a filesystem —
// point at it and claim shards through flock-held lease files. Workers
// may be killed (even kill -9) at any moment; their shards are stolen
// and the merged result is bit-identical to an uninterrupted
// single-process run.
//
// Usage:
//
//	campaignd plan -dir fleet/ -spec synth -configs a,b -trials 64 -shard-size 8
//	campaignd work -dir fleet/ -name w1 &
//	campaignd work -dir fleet/ -name w2 &
//	campaignd status -dir fleet/
//	campaignd merge -dir fleet/
//
// The -spec kind is recorded in the manifest so every worker rebuilds
// the identical trial function:
//
//	synth  deterministic synthetic trials (protocol testing, benchmarks)
//	fig5   the paper's Figure 5 measured-model campaign (each worker
//	       trains the same model from the recorded seed)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/cliutil"
	"repro/internal/exper"
	"repro/internal/fleet"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaignd: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "plan":
		cmdPlan(os.Args[2:])
	case "work":
		cmdWork(os.Args[2:])
	case "merge":
		cmdMerge(os.Args[2:])
	case "status":
		cmdStatus(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "campaignd: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: campaignd <subcommand> [flags]

  plan    cut a campaign into shards and write the fleet manifest
  work    run one worker: claim shards, execute trials, steal dead leases
  merge   fold completed shard WALs into the campaign result
  status  report per-shard lease state and record counts

run "campaignd <subcommand> -h" for flags`)
}

// specKinds the work subcommand can rebuild a RunFunc for.
const (
	specSynth = "synth"
	specFig5  = "fig5"
)

// synthSpec parameterizes the synthetic trial function.
type synthSpec struct {
	// SleepMS stretches every trial so lease/steal behavior is
	// observable at human timescales.
	SleepMS int `json:"sleep_ms,omitempty"`
}

// fig5Spec records how to rebuild the Figure 5 environment.
type fig5Spec struct {
	EnvSeed uint64 `json:"env_seed"`
}

func cmdPlan(args []string) {
	fs := flag.NewFlagSet("campaignd plan", flag.ExitOnError)
	dir := fs.String("dir", "", "fleet directory (created; must not already hold a manifest)")
	spec := fs.String("spec", specSynth, "trial function: synth|fig5")
	name := fs.String("name", "", "campaign label for status output")
	seed := fs.Uint64("seed", 1, "campaign seed (fig5: the experiment-environment seed)")
	configs := fs.String("configs", "", "comma-separated config IDs (synth only; fig5 configs are fixed)")
	trials := fs.Int("trials", 12, "maximum trials per config")
	minTrials := fs.Int("min-trials", 0, "trials before early stopping may trigger")
	ciTarget := fs.Float64("ci-target", 0, "early-stop 95% CI half-width target, applied at merge time (0 = full budget)")
	confidence := fs.Float64("confidence", 0, "CI confidence level (0 = engine default 0.95)")
	shardSize := fs.Int("shard-size", 0, "maximum trials per shard (0 = one shard per config)")
	sleepMS := fs.Int("sleep-ms", 0, "synth: per-trial sleep in milliseconds")
	fs.Parse(args)
	if *dir == "" {
		log.Fatal("plan: -dir is required")
	}

	ps := fleet.PlanSpec{
		Dir: *dir, Name: *name,
		MaxTrials: *trials, MinTrials: *minTrials,
		CITarget: *ciTarget, Confidence: *confidence,
		ShardSize: *shardSize,
		SpecKind:  *spec,
	}
	switch *spec {
	case specSynth:
		ps.Seed = *seed
		ps.Configs = splitList(*configs)
		if len(ps.Configs) == 0 {
			log.Fatal("plan: -spec synth requires -configs")
		}
		raw, err := json.Marshal(synthSpec{SleepMS: *sleepMS})
		if err != nil {
			log.Fatal(err)
		}
		ps.Spec = raw
	case specFig5:
		// Mirror Env.Fig5Campaign: the campaign seed is the environment
		// seed plus the fixed offset, so fleet results are bit-identical
		// to "maxnvm -fig 5c" at the same -seed.
		ps.Seed = *seed + 99
		ps.Configs = exper.Fig5Configs()
		raw, err := json.Marshal(fig5Spec{EnvSeed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		ps.Spec = raw
	default:
		log.Fatalf("plan: unknown -spec %q (want synth or fig5)", *spec)
	}

	m, err := fleet.Plan(ps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned %d shard(s) over %d config(s), %d trials each, into %s\n",
		len(m.Shards), len(m.Configs), m.MaxTrials, *dir)
	fmt.Printf("start workers with: campaignd work -dir %s\n", *dir)
}

// runFuncFor rebuilds the trial function the manifest records. Every
// worker process must end up with the same pure function, or the
// bit-identical merge contract breaks — which the merge then reports as
// determinism violations.
func runFuncFor(m *fleet.Manifest) (campaign.RunFunc, error) {
	switch m.SpecKind {
	case specSynth:
		var s synthSpec
		if len(m.Spec) > 0 {
			if err := json.Unmarshal(m.Spec, &s); err != nil {
				return nil, fmt.Errorf("campaignd: synth spec: %w", err)
			}
		}
		sleep := time.Duration(s.SleepMS) * time.Millisecond
		return func(ctx context.Context, t campaign.Trial) (campaign.Sample, error) {
			if sleep > 0 {
				select {
				case <-time.After(sleep):
				case <-ctx.Done():
					return campaign.Sample{}, ctx.Err()
				}
			}
			src := stats.NewSource(t.Seed)
			return campaign.Sample{
				Value: src.Gaussian(1, 0.25),
				Extra: map[string]float64{"faults": float64(src.Intn(100))},
			}, nil
		}, nil
	case specFig5:
		var s fig5Spec
		if err := json.Unmarshal(m.Spec, &s); err != nil {
			return nil, fmt.Errorf("campaignd: fig5 spec: %w", err)
		}
		fmt.Fprintln(os.Stderr, "campaignd: training measured model (TinyCNN on synthetic data)...")
		return exper.NewEnv(s.EnvSeed).Fig5Runner()
	default:
		return nil, fmt.Errorf("campaignd: manifest spec kind %q is not workable by this binary "+
			"(inline fleets embed their trial function in the planning process)", m.SpecKind)
	}
}

func cmdWork(args []string) {
	fs := flag.NewFlagSet("campaignd work", flag.ExitOnError)
	dir := fs.String("dir", "", "fleet directory")
	name := fs.String("name", "", "worker name in leases and logs (default w<pid>)")
	ttl := fs.Duration("ttl", 10*time.Second, "lease staleness bound this worker declares")
	heartbeat := fs.Duration("heartbeat", 0, "lease renewal interval (0 = ttl/4)")
	poll := fs.Duration("poll", 0, "idle re-scan interval (0 = default 200ms)")
	wait := fs.Bool("wait", true, "keep polling (and stealing expired leases) until every shard is done")
	workers := fs.Int("workers", 0, "concurrent trial workers per shard (0 = auto)")
	progress := fs.Duration("progress", 5*time.Second, "progress-line interval on stderr (0 = silent)")
	tel := cliutil.AddFlagsTo(fs)
	fs.Parse(args)
	if *dir == "" {
		log.Fatal("work: -dir is required")
	}
	tel.Start()
	defer tel.Dump()

	m, err := fleet.LoadManifest(nil, *dir)
	if err != nil {
		log.Fatal(err)
	}
	run, err := runFuncFor(m)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := cliutil.NotifyContext(context.Background())
	defer stop()

	opt := fleet.WorkerOptions{
		Dir: *dir, Name: *name, Run: run,
		TTL: *ttl, Heartbeat: *heartbeat, Poll: *poll,
		WaitForAll: *wait, Workers: *workers,
		Fsync: tel.SyncPolicy(), Log: os.Stderr,
	}
	if *progress > 0 {
		opt.Progress = os.Stderr
		opt.ProgressEvery = *progress
	}
	rep, err := fleet.Work(ctx, opt)
	if rep != nil {
		fmt.Printf("worker done: %d shard(s) completed (%d stolen), %d trials executed, %d inherited, %d lost to fencing\n",
			len(rep.Completed), rep.Stolen, rep.Trials, rep.Reused, rep.Fenced)
	}
	if err != nil {
		if ctx.Err() != nil {
			fmt.Println("interrupted: completed trials are in the shard WALs; restart to continue")
			tel.Dump() // os.Exit skips the deferred dump
			os.Exit(130)
		}
		log.Fatal(err)
	}
}

func cmdMerge(args []string) {
	fs := flag.NewFlagSet("campaignd merge", flag.ExitOnError)
	dir := fs.String("dir", "", "fleet directory")
	partial := fs.Bool("partial", false, "fold whatever records exist even if shards are incomplete")
	asJSON := fs.Bool("json", false, "emit the merged result as JSON on stdout")
	fs.Parse(args)
	if *dir == "" {
		log.Fatal("merge: -dir is required")
	}

	rep, err := fleet.Merge(fleet.MergeOptions{Dir: *dir, AllowPartial: *partial, Log: os.Stderr})
	if err != nil {
		if !*partial && strings.Contains(err.Error(), "incomplete") {
			log.Fatalf("%v (use -partial to fold what exists)", err)
		}
		log.Fatal(err)
	}
	res := rep.Result
	if *asJSON {
		out := struct {
			Result *campaign.Result   `json:"result"`
			Fleet  *fleet.MergeReport `json:"fleet"`
		}{res, rep}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("merged %d record(s) from %d/%d shard(s) (%d duplicate(s) collapsed, %d torn line(s) skipped)\n",
		rep.Records, rep.Done, rep.Shards, rep.Duplicates, rep.TornLines)
	if rep.Mismatches > 0 {
		fmt.Printf("WARNING: %d determinism violation(s) — the trial function differed between workers\n", rep.Mismatches)
	}
	for _, cr := range res.Configs {
		note := ""
		if cr.EarlyStopped {
			note = "  [early stop]"
		}
		if len(cr.Errors) > 0 {
			note += fmt.Sprintf("  [%d failed trials]", len(cr.Errors))
		}
		fmt.Printf("  %-30s mean %.6g ±%.4g  worst %.6g  n=%d%s\n",
			cr.Config, cr.Mean, cr.CIHalf, cr.Max, cr.N, note)
	}
	if res.Interrupted {
		fmt.Println("partial merge: coverage holes remain; finish the fleet and merge again")
	}
}

func cmdStatus(args []string) {
	fs := flag.NewFlagSet("campaignd status", flag.ExitOnError)
	dir := fs.String("dir", "", "fleet directory")
	fs.Parse(args)
	if *dir == "" {
		log.Fatal("status: -dir is required")
	}

	m, shards, err := fleet.Status(nil, *dir)
	if err != nil {
		log.Fatal(err)
	}
	label := m.Name
	if label == "" {
		label = m.SpecKind
	}
	complete := 0
	fmt.Printf("%-7s %-24s %-11s %-9s %-6s %-12s %-8s %s\n",
		"shard", "config", "trials", "state", "epoch", "owner", "hb age", "records")
	for _, st := range shards {
		if st.State == fleet.StateComplete {
			complete++
		}
		hb := "-"
		if st.Owner != "" {
			hb = st.HBAge.Round(time.Millisecond).String()
		}
		owner := st.Owner
		if owner == "" {
			owner = "-"
		}
		fmt.Printf("%-7s %-24s %4d-%-6d %-9s %-6d %-12s %-8s %d/%d\n",
			st.Shard.ID, st.Shard.Config, st.Shard.Lo, st.Shard.Hi,
			st.State, st.Epoch, owner, hb, st.Records, st.Shard.Hi-st.Shard.Lo)
	}
	fmt.Printf("campaign %q: %d/%d shard(s) complete\n", label, complete, len(shards))
	if complete == len(shards) {
		fmt.Printf("all shards done: campaignd merge -dir %s\n", *dir)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
