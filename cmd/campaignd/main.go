// Command campaignd coordinates fault-injection campaign fleets: it
// cuts a campaign into shards (plan), runs lease-claiming workers
// against the shared fleet directory (work), spawns and self-heals a
// whole worker fleet in one command (supervise), folds completed shard
// WALs into one deterministic result (merge), and reports live shard
// state (status; exit 2 when the fleet is stalled or degraded).
//
// A fleet directory is the only coordination channel: any number of
// worker processes — on one machine or many sharing a filesystem —
// point at it and claim shards through flock-held lease files. Workers
// may be killed (even kill -9) at any moment; their shards are stolen
// and the merged result is bit-identical to an uninterrupted
// single-process run.
//
// Usage:
//
//	campaignd plan -dir fleet/ -spec synth -configs a,b -trials 64 -shard-size 8
//	campaignd supervise -dir fleet/ -n 4      # or: campaignd work -dir fleet/ &
//	campaignd status -dir fleet/
//	campaignd merge -dir fleet/
//
// supervise re-executes this binary as its workers: crashed workers
// restart under jittered exponential backoff, and a shard whose
// claimants die repeatedly without progress (a poison trial) is
// quarantined so the rest of the fleet converges with explicitly
// degraded coverage instead of crash-looping.
//
// The -spec kind is recorded in the manifest so every worker rebuilds
// the identical trial function:
//
//	synth  deterministic synthetic trials (protocol testing, benchmarks)
//	fig5   the paper's Figure 5 measured-model campaign (each worker
//	       trains the same model from the recorded seed)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/chaos"
	"repro/internal/cliutil"
	"repro/internal/exper"
	"repro/internal/fleet"
	"repro/internal/stats"
	"repro/internal/supervise"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaignd: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "plan":
		cmdPlan(os.Args[2:])
	case "work":
		cmdWork(os.Args[2:])
	case "supervise":
		cmdSupervise(os.Args[2:])
	case "merge":
		cmdMerge(os.Args[2:])
	case "status":
		cmdStatus(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "campaignd: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: campaignd <subcommand> [flags]

  plan       cut a campaign into shards and write the fleet manifest
  work       run one worker: claim shards, execute trials, steal dead leases
  supervise  spawn and babysit N workers: restart crashes with backoff,
             quarantine poison shards that exhaust their crash budget
  merge      fold completed shard WALs into the campaign result
  status     report per-shard lease state and record counts
             (exit 2 when any shard is stalled or quarantined)

run "campaignd <subcommand> -h" for flags`)
}

// specKinds the work subcommand can rebuild a RunFunc for.
const (
	specSynth = "synth"
	specFig5  = "fig5"
)

// synthSpec parameterizes the synthetic trial function.
type synthSpec struct {
	// SleepMS stretches every trial so lease/steal behavior is
	// observable at human timescales.
	SleepMS int `json:"sleep_ms,omitempty"`
}

// fig5Spec records how to rebuild the Figure 5 environment.
type fig5Spec struct {
	EnvSeed uint64 `json:"env_seed"`
}

func cmdPlan(args []string) {
	fs := flag.NewFlagSet("campaignd plan", flag.ExitOnError)
	dir := fs.String("dir", "", "fleet directory (created; must not already hold a manifest)")
	spec := fs.String("spec", specSynth, "trial function: synth|fig5")
	name := fs.String("name", "", "campaign label for status output")
	seed := fs.Uint64("seed", 1, "campaign seed (fig5: the experiment-environment seed)")
	configs := fs.String("configs", "", "comma-separated config IDs (synth only; fig5 configs are fixed)")
	trials := fs.Int("trials", 12, "maximum trials per config")
	minTrials := fs.Int("min-trials", 0, "trials before early stopping may trigger")
	ciTarget := fs.Float64("ci-target", 0, "early-stop 95% CI half-width target, applied at merge time (0 = full budget)")
	confidence := fs.Float64("confidence", 0, "CI confidence level (0 = engine default 0.95)")
	shardSize := fs.Int("shard-size", 0, "maximum trials per shard (0 = one shard per config)")
	sleepMS := fs.Int("sleep-ms", 0, "synth: per-trial sleep in milliseconds")
	fs.Parse(args)
	if *dir == "" {
		log.Fatal("plan: -dir is required")
	}

	ps := fleet.PlanSpec{
		Dir: *dir, Name: *name,
		MaxTrials: *trials, MinTrials: *minTrials,
		CITarget: *ciTarget, Confidence: *confidence,
		ShardSize: *shardSize,
		SpecKind:  *spec,
	}
	switch *spec {
	case specSynth:
		ps.Seed = *seed
		ps.Configs = splitList(*configs)
		if len(ps.Configs) == 0 {
			log.Fatal("plan: -spec synth requires -configs")
		}
		raw, err := json.Marshal(synthSpec{SleepMS: *sleepMS})
		if err != nil {
			log.Fatal(err)
		}
		ps.Spec = raw
	case specFig5:
		// Mirror Env.Fig5Campaign: the campaign seed is the environment
		// seed plus the fixed offset, so fleet results are bit-identical
		// to "maxnvm -fig 5c" at the same -seed.
		ps.Seed = *seed + 99
		ps.Configs = exper.Fig5Configs()
		raw, err := json.Marshal(fig5Spec{EnvSeed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		ps.Spec = raw
	default:
		log.Fatalf("plan: unknown -spec %q (want synth or fig5)", *spec)
	}

	m, err := fleet.Plan(ps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned %d shard(s) over %d config(s), %d trials each, into %s\n",
		len(m.Shards), len(m.Configs), m.MaxTrials, *dir)
	fmt.Printf("start workers with: campaignd work -dir %s\n", *dir)
}

// runFuncFor rebuilds the trial function the manifest records. Every
// worker process must end up with the same pure function, or the
// bit-identical merge contract breaks — which the merge then reports as
// determinism violations.
func runFuncFor(m *fleet.Manifest) (campaign.RunFunc, error) {
	switch m.SpecKind {
	case specSynth:
		var s synthSpec
		if len(m.Spec) > 0 {
			if err := json.Unmarshal(m.Spec, &s); err != nil {
				return nil, fmt.Errorf("campaignd: synth spec: %w", err)
			}
		}
		sleep := time.Duration(s.SleepMS) * time.Millisecond
		return func(ctx context.Context, t campaign.Trial) (campaign.Sample, error) {
			if sleep > 0 {
				select {
				case <-time.After(sleep):
				case <-ctx.Done():
					return campaign.Sample{}, ctx.Err()
				}
			}
			src := stats.NewSource(t.Seed)
			return campaign.Sample{
				Value: src.Gaussian(1, 0.25),
				Extra: map[string]float64{"faults": float64(src.Intn(100))},
			}, nil
		}, nil
	case specFig5:
		var s fig5Spec
		if err := json.Unmarshal(m.Spec, &s); err != nil {
			return nil, fmt.Errorf("campaignd: fig5 spec: %w", err)
		}
		fmt.Fprintln(os.Stderr, "campaignd: training measured model (TinyCNN on synthetic data)...")
		return exper.NewEnv(s.EnvSeed).Fig5Runner()
	default:
		return nil, fmt.Errorf("campaignd: manifest spec kind %q is not workable by this binary "+
			"(inline fleets embed their trial function in the planning process)", m.SpecKind)
	}
}

func cmdWork(args []string) {
	fs := flag.NewFlagSet("campaignd work", flag.ExitOnError)
	dir := fs.String("dir", "", "fleet directory")
	name := fs.String("name", "", "worker name in leases and logs (default w<pid>)")
	ttl := fs.Duration("ttl", 10*time.Second, "lease staleness bound this worker declares")
	heartbeat := fs.Duration("heartbeat", 0, "lease renewal interval (0 = ttl/4)")
	poll := fs.Duration("poll", 0, "idle re-scan interval (0 = default 200ms)")
	wait := fs.Bool("wait", true, "keep polling (and stealing expired leases) until every shard is done")
	workers := fs.Int("workers", 0, "concurrent trial workers per shard (0 = auto)")
	progress := fs.Duration("progress", 5*time.Second, "progress-line interval on stderr (0 = silent)")
	poison := fs.String("poison", "", "chaos: comma-separated config:trial cells that kill this process (testing only)")
	tel := cliutil.AddFlagsTo(fs)
	fs.Parse(args)
	if *dir == "" {
		log.Fatal("work: -dir is required")
	}
	cells, err := chaos.ParseCells(*poison)
	if err != nil {
		log.Fatal(err)
	}
	tel.Start()
	defer tel.Dump()

	m, err := fleet.LoadManifest(nil, *dir)
	if err != nil {
		log.Fatal(err)
	}
	run, err := runFuncFor(m)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := cliutil.NotifyContext(context.Background())
	defer stop()

	opt := fleet.WorkerOptions{
		Dir: *dir, Name: *name, Run: run,
		TTL: *ttl, Heartbeat: *heartbeat, Poll: *poll,
		WaitForAll: *wait, Workers: *workers,
		Fsync: tel.SyncPolicy(), Log: os.Stderr,
		OnTrialStart: chaos.PoisonHook(cells, nil),
	}
	if *progress > 0 {
		opt.Progress = os.Stderr
		opt.ProgressEvery = *progress
	}
	rep, err := fleet.Work(ctx, opt)
	if rep != nil {
		fmt.Printf("worker done: %d shard(s) completed (%d stolen), %d trials executed, %d inherited, %d lost to fencing\n",
			len(rep.Completed), rep.Stolen, rep.Trials, rep.Reused, rep.Fenced)
	}
	if err != nil {
		if ctx.Err() != nil {
			fmt.Println("interrupted: completed trials are in the shard WALs; restart to continue")
			tel.Dump() // os.Exit skips the deferred dump
			os.Exit(130)
		}
		log.Fatal(err)
	}
}

// cmdSupervise runs the self-healing layer: it re-executes this binary
// as "campaignd work" subprocesses and supervises them — crash
// restarts with jittered backoff, poison-shard quarantine, stall
// reaping — until the fleet converges.
func cmdSupervise(args []string) {
	fs := flag.NewFlagSet("campaignd supervise", flag.ExitOnError)
	dir := fs.String("dir", "", "fleet directory")
	n := fs.Int("n", 2, "worker subprocesses to supervise")
	crashBudget := fs.Int("crash-budget", 3, "consecutive no-progress claimant deaths before a shard is quarantined")
	backoff := fs.Duration("backoff", 150*time.Millisecond, "restart backoff base (full jitter, doubles per crash)")
	backoffMax := fs.Duration("backoff-max", 5*time.Second, "restart backoff ceiling")
	maxRestarts := fs.Int("max-restarts", 100, "total restart budget before the supervisor gives up")
	stallTTL := fs.Duration("stall-ttl", 30*time.Second, "kill a worker whose newest lease heartbeat is older than this (0 = never)")
	poll := fs.Duration("poll", 500*time.Millisecond, "fleet-status polling interval")
	seed := fs.Uint64("seed", 1, "backoff jitter seed")
	ttl := fs.Duration("ttl", 10*time.Second, "lease TTL each worker declares")
	heartbeat := fs.Duration("heartbeat", 0, "worker lease renewal interval (0 = ttl/4)")
	workers := fs.Int("workers", 0, "concurrent trial workers per shard in each subprocess (0 = auto)")
	poison := fs.String("poison", "", "chaos: config:trial cells passed to every worker (testing only)")
	tel := cliutil.AddFlagsTo(fs)
	fs.Parse(args)
	if *dir == "" {
		log.Fatal("supervise: -dir is required")
	}
	self, err := os.Executable()
	if err != nil {
		log.Fatalf("supervise: cannot find own binary: %v", err)
	}
	tel.Start()
	defer tel.Dump()

	ctx, stop := cliutil.NotifyContext(context.Background())
	defer stop()

	rep, err := supervise.Run(ctx, supervise.Options{
		Dir: *dir, Workers: *n,
		Command: func(slot int, name string) (*exec.Cmd, error) {
			argv := []string{"work",
				"-dir", *dir, "-name", name,
				"-ttl", ttl.String(), "-heartbeat", heartbeat.String(),
				"-workers", fmt.Sprint(*workers), "-wait",
			}
			if *poison != "" {
				argv = append(argv, "-poison", *poison)
			}
			cmd := exec.Command(self, argv...)
			cmd.Stdout = os.Stderr // worker chatter must not pollute the report
			cmd.Stderr = os.Stderr
			return cmd, nil
		},
		CrashBudget: *crashBudget,
		BackoffBase: *backoff, BackoffMax: *backoffMax,
		MaxRestarts: *maxRestarts, StallTTL: *stallTTL,
		Poll: *poll, Seed: *seed,
		Log: os.Stderr,
	})
	fmt.Printf("supervise done: %d restart(s), %d clean exit(s), %d stall kill(s), converged=%v\n",
		rep.Restarts, rep.CleanExits, rep.StallKills, rep.Converged)
	if len(rep.Quarantined) > 0 {
		fmt.Printf("WARNING: quarantined shard(s) %v — merged coverage will be degraded; "+
			"fix the trial function, remove the .quarantined marker(s), and re-run to recover\n",
			rep.Quarantined)
	}
	if err != nil {
		if ctx.Err() != nil {
			fmt.Println("interrupted: leases released by worker death are stealable; re-run supervise to continue")
			tel.Dump()
			os.Exit(130)
		}
		log.Fatal(err)
	}
	if rep.Converged {
		fmt.Printf("fleet converged: campaignd merge -dir %s\n", *dir)
	}
}

func cmdMerge(args []string) {
	fs := flag.NewFlagSet("campaignd merge", flag.ExitOnError)
	dir := fs.String("dir", "", "fleet directory")
	partial := fs.Bool("partial", false, "fold whatever records exist even if shards are incomplete")
	asJSON := fs.Bool("json", false, "emit the merged result as JSON on stdout")
	fs.Parse(args)
	if *dir == "" {
		log.Fatal("merge: -dir is required")
	}

	rep, err := fleet.Merge(fleet.MergeOptions{Dir: *dir, AllowPartial: *partial, Log: os.Stderr})
	if err != nil {
		if !*partial && strings.Contains(err.Error(), "incomplete") {
			log.Fatalf("%v (use -partial to fold what exists)", err)
		}
		log.Fatal(err)
	}
	res := rep.Result
	if *asJSON {
		out := struct {
			Result *campaign.Result   `json:"result"`
			Fleet  *fleet.MergeReport `json:"fleet"`
		}{res, rep}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("merged %d record(s) from %d/%d shard(s) (%d duplicate(s) collapsed, %d torn line(s) skipped)\n",
		rep.Records, rep.Done, rep.Shards, rep.Duplicates, rep.TornLines)
	if rep.Mismatches > 0 {
		fmt.Printf("WARNING: %d determinism violation(s) — the trial function differed between workers\n", rep.Mismatches)
	}
	for _, cr := range res.Configs {
		note := ""
		if cr.EarlyStopped {
			note = "  [early stop]"
		}
		if len(cr.Errors) > 0 {
			note += fmt.Sprintf("  [%d failed trials]", len(cr.Errors))
		}
		fmt.Printf("  %-30s mean %.6g ±%.4g  worst %.6g  n=%d%s\n",
			cr.Config, cr.Mean, cr.CIHalf, cr.Max, cr.N, note)
	}
	if len(rep.Quarantined) > 0 {
		fmt.Printf("DEGRADED: quarantined shard(s) %v excluded by supervisor verdict; "+
			"coverage stays short unless the markers are lifted and the fleet re-run\n", rep.Quarantined)
	}
	if res.Interrupted && len(rep.Quarantined) == 0 {
		fmt.Println("partial merge: coverage holes remain; finish the fleet and merge again")
	}
}

func cmdStatus(args []string) {
	fs := flag.NewFlagSet("campaignd status", flag.ExitOnError)
	dir := fs.String("dir", "", "fleet directory")
	fs.Parse(args)
	if *dir == "" {
		log.Fatal("status: -dir is required")
	}

	m, shards, err := fleet.Status(nil, *dir)
	if err != nil {
		log.Fatal(err)
	}
	label := m.Name
	if label == "" {
		label = m.SpecKind
	}
	complete, stale, quarantined := 0, 0, 0
	fmt.Printf("%-7s %-24s %-11s %-9s %-6s %-12s %-8s %s\n",
		"shard", "config", "trials", "state", "epoch", "owner", "hb age", "records")
	for _, st := range shards {
		switch st.State {
		case fleet.StateComplete:
			complete++
		case fleet.StateStale:
			stale++
		case fleet.StateQuarantined:
			quarantined++
		}
		hb := "-"
		if st.Owner != "" {
			hb = st.HBAge.Round(time.Millisecond).String()
		}
		owner := st.Owner
		if owner == "" {
			owner = "-"
		}
		fmt.Printf("%-7s %-24s %4d-%-6d %-9s %-6d %-12s %-8s %d/%d\n",
			st.Shard.ID, st.Shard.Config, st.Shard.Lo, st.Shard.Hi,
			st.State, st.Epoch, owner, hb, st.Records, st.Shard.Hi-st.Shard.Lo)
		if st.Quarantine != nil && st.Quarantine.Reason != "" {
			fmt.Printf("        ^ quarantined: %s\n", st.Quarantine.Reason)
		}
	}
	fmt.Printf("campaign %q: %d/%d shard(s) complete\n", label, complete, len(shards))
	if complete == len(shards) {
		fmt.Printf("all shards done: campaignd merge -dir %s\n", *dir)
	}
	// Degraded or wedged fleets exit non-zero so scripts and CI can gate
	// on fleet health without parsing the table.
	if stale > 0 || quarantined > 0 {
		fmt.Printf("DEGRADED: %d stalled lease(s), %d quarantined shard(s)\n", stale, quarantined)
		os.Exit(2)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
