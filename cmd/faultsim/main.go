// Command faultsim runs standalone fault-injection campaigns: it trains
// the small measured model (or loads a zoo model via the surrogate) and
// reports corruption statistics and classification-error deltas for a
// chosen storage configuration.
//
// Usage:
//
//	faultsim -tech MLC-CTT -encoding csr -bpc 3 -ecc rowcount,colidx -trials 20
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/ares"
	"repro/internal/dnn"
	"repro/internal/envm"
	"repro/internal/sparse"
	"repro/internal/train"
)

func main() {
	techName := flag.String("tech", "MLC-CTT", "technology (MLC-CTT, MLC-RRAM, Opt MLC-RRAM, SLC-RRAM)")
	encName := flag.String("encoding", "csr", "encoding: dense|csr|bitmask|idxsync")
	bpc := flag.Int("bpc", 3, "default bits per cell")
	eccList := flag.String("ecc", "", "comma-separated streams to ECC-protect")
	slcList := flag.String("slc", "", "comma-separated streams forced to SLC")
	trials := flag.Int("trials", 12, "fault maps to sample")
	seed := flag.Uint64("seed", 1, "seed")
	flag.Parse()

	tech, err := envm.ByName(*techName)
	if err != nil {
		log.Fatal(err)
	}
	var kind sparse.Kind
	switch strings.ToLower(*encName) {
	case "dense":
		kind = sparse.KindDense
	case "csr":
		kind = sparse.KindCSR
	case "bitmask":
		kind = sparse.KindBitMask
	case "idxsync":
		kind = sparse.KindBitMaskIdxSync
	default:
		fmt.Fprintf(os.Stderr, "faultsim: unknown encoding %q\n", *encName)
		os.Exit(2)
	}

	cfg := ares.Config{
		Tech:      tech,
		Encoding:  kind,
		Default:   ares.StreamPolicy{BPC: *bpc},
		Overrides: map[string]ares.StreamPolicy{},
	}
	for _, s := range splitList(*eccList) {
		cfg.Overrides[s] = ares.StreamPolicy{BPC: *bpc, ECC: true}
	}
	for _, s := range splitList(*slcList) {
		cfg.Overrides[s] = ares.StreamPolicy{BPC: 1}
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("config: %v\n", cfg)
	fmt.Println("training measured model (TinyCNN on synthetic data)...")
	trainDS := train.Synthesize(train.SynthConfig{N: 600, Seed: *seed + 10, ProtoSeed: 77})
	testDS := train.Synthesize(train.SynthConfig{N: 300, Seed: *seed + 11, ProtoSeed: 77})
	m := dnn.TinyCNN()
	m.InitWeights(*seed + 42)
	if _, err := train.Train(m, trainDS, train.Config{Epochs: 6, Seed: *seed}); err != nil {
		log.Fatal(err)
	}
	ev, err := ares.NewMeasuredEvaluator(m, testDS, *seed+5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline error (pruned+clustered): %.4f\n", ev.BaselineErr)

	res := ev.EvalConfig(cfg, *trials, *seed+99)
	var faults, corrected, detected int
	var mismatch, nsr float64
	for _, st := range res.Stats {
		faults += st.Faults
		corrected += st.Corrected
		detected += st.Detected
		mismatch += st.Mismatch
		nsr += st.ValueNSR
	}
	n := float64(len(res.Stats))
	fmt.Printf("\nover %d fault maps:\n", *trials)
	fmt.Printf("  faults/map:        %.1f (ECC corrected %.1f, detected %.1f)\n",
		float64(faults)/n, float64(corrected)/n, float64(detected)/n)
	fmt.Printf("  index mismatch:    %.5f of weights\n", mismatch/n)
	fmt.Printf("  weight NSR:        %.5g\n", nsr/n)
	fmt.Printf("  error delta:       mean +%.4f, worst +%.4f\n", res.MeanDeltaErr, res.MaxDeltaErr)
	fmt.Printf("  ITN bound:         %.4f -> %s\n", m.Meta.ErrorBound,
		verdict(res.MeanDeltaErr <= m.Meta.ErrorBound))
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func verdict(ok bool) string {
	if ok {
		return "ACCEPTED"
	}
	return "REJECTED"
}
