// Command faultsim runs standalone fault-injection campaigns: it trains
// the small measured model and drives (config x seed) trials through the
// resilient campaign engine (internal/campaign), reporting corruption
// statistics and classification-error deltas for a chosen storage
// configuration.
//
// Campaigns are interruptible and resumable: Ctrl-C flushes completed
// trials to the checkpoint (if -checkpoint is set) and a later run with
// -resume replays them instead of re-executing, converging to the exact
// aggregates an uninterrupted run would have produced.
//
// Lifetime mode (-lifetime-years) simulates an N-year deployment as
// age -> inject -> correct -> rewrite epochs instead of a single
// write-time campaign, with -protect spending a criticality-aware
// protection budget and -scrub-interval overriding (or, at 0, asking
// the scheduler for) the refresh period. Every epoch is its own
// campaign config with its own checkpoint rows.
//
// Crossbar mode (-crossbar) maps the weights onto compute-in-memory
// arrays instead of a stored-bit encoding and prints a before/after
// table per -tile size: the bare array (programming variation +
// stuck-at faults) vs the same array with online soft-error detection
// and remap scrubbing (see cmd/faultsim/crossbar.go).
//
// Usage:
//
//	faultsim -tech MLC-CTT -encoding csr -bpc 3 -ecc rowcount,colidx -trials 20
//	faultsim -trials 64 -ci-target 0.005 -checkpoint run.jsonl
//	faultsim -resume -checkpoint run.jsonl -trials 64 -ci-target 0.005
//	faultsim -tech MLC-RRAM -encoding csr -bpc 3 -lifetime-years 10 -protect 0.1
//	faultsim -crossbar -tile 64x32,128x64 -adc-bits 6 -spare-cols 4 -trials 16
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/ares"
	"repro/internal/campaign"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/crossbar"
	"repro/internal/dnn"
	"repro/internal/envm"
	"repro/internal/mitigate"
	"repro/internal/sparse"
	"repro/internal/train"
)

func main() {
	techName := flag.String("tech", "MLC-CTT", "technology (MLC-CTT, MLC-RRAM, Opt MLC-RRAM, SLC-RRAM)")
	encName := flag.String("encoding", "csr", "encoding: "+strings.Join(cliutil.EncodingNames(), "|"))
	bpc := flag.Int("bpc", 3, "default bits per cell")
	eccList := flag.String("ecc", "", "comma-separated streams to ECC-protect")
	slcList := flag.String("slc", "", "comma-separated streams forced to SLC")
	trials := flag.Int("trials", 12, "maximum fault maps to sample")
	minTrials := flag.Int("min-trials", 4, "trials before early stopping may trigger")
	ciTarget := flag.Float64("ci-target", 0, "stop early once the 95% CI half-width of the error delta is below this (0 = full budget)")
	workers := flag.Int("workers", 0, "concurrent trial workers (0 = auto)")
	timeout := flag.Duration("timeout", 0, "per-trial deadline, e.g. 30s (0 = none)")
	checkpoint := flag.String("checkpoint", "", "JSONL checkpoint path (completed trials are appended)")
	resume := flag.Bool("resume", false, "replay completed trials from -checkpoint before running the rest")
	seed := flag.Uint64("seed", 1, "seed")
	progress := flag.Duration("progress", 5*time.Second, "progress-line interval on stderr (0 = silent)")
	lifetimeYears := flag.Float64("lifetime-years", 0, "simulate an N-year deployment as age->inject->correct->rewrite epochs (0 = write-time campaign)")
	scrubInterval := flag.Float64("scrub-interval", 0, "years between scrub rewrites in lifetime mode (0 = let the scheduler choose, negative = never scrub)")
	protect := flag.Float64("protect", 0, "criticality-aware protection budget: extra cells as a fraction of the baseline (0 = keep the -ecc/-slc flags as given)")
	degrade := flag.Bool("degrade", false, "zero uncorrectable ECC blocks instead of decoding their corrupt bits")
	compare := flag.Bool("compare-encodings", false, "run the same campaign under CSR, bitmask, and 2:4 and report density, blast radius, and trials/s per encoding")
	fleetN := flag.Int("fleet", 0, "run the campaign as an N-worker single-machine fleet (lease-claimed shards, kill-safe, bit-identical merge)")
	fleetDir := flag.String("fleet-dir", "", "fleet directory for -fleet (default: a temporary directory; an existing fleet dir is resumed)")
	xbar := cliutil.AddXbarFlags()
	tel := cliutil.AddFlags()
	flag.Parse()
	tel.Start()
	defer tel.Dump()

	tech, err := envm.ByName(*techName)
	if err != nil {
		log.Fatal(err)
	}
	kind, err := cliutil.ParseEncoding(*encName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultsim: %v\n", err)
		os.Exit(2)
	}

	cfg := ares.Config{
		Tech:      tech,
		Encoding:  kind,
		Default:   ares.StreamPolicy{BPC: *bpc},
		Overrides: map[string]ares.StreamPolicy{},
	}
	for _, s := range mustStreams(kind, "-ecc", *eccList) {
		cfg.Overrides[s] = ares.StreamPolicy{BPC: *bpc, ECC: true}
	}
	for _, s := range mustStreams(kind, "-slc", *slcList) {
		cfg.Overrides[s] = ares.StreamPolicy{BPC: 1}
	}
	cfg.Degrade = *degrade
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	if *resume && *checkpoint == "" {
		log.Fatal("faultsim: -resume requires -checkpoint")
	}
	// Crossbar-mode flag conflicts and tile parsing fail here, before
	// the training phase, like every other flag validation.
	var xcfgs []crossbar.Config
	if *xbar.Enabled {
		if *eccList != "" || *slcList != "" || *protect > 0 || *lifetimeYears > 0 || *fleetN > 0 || *compare {
			log.Fatal("faultsim: -crossbar models faults in the compute arrays, not stored bits; drop -ecc/-slc/-protect/-lifetime-years/-fleet/-compare-encodings")
		}
		var xerr error
		if xcfgs, xerr = xbar.Configs(tech); xerr != nil {
			log.Fatal(xerr)
		}
	}

	// SIGINT / SIGTERM cancel the campaign; completed trials are already
	// flushed to the checkpoint and the partial aggregates still print.
	ctx, stop := cliutil.NotifyContext(context.Background())
	defer stop()

	fmt.Printf("config: %v\n", cfg)
	fmt.Println("training measured model (TinyCNN on synthetic data)...")
	trainDS := train.Synthesize(train.SynthConfig{N: 600, Seed: *seed + 10, ProtoSeed: 77})
	testDS := train.Synthesize(train.SynthConfig{N: 300, Seed: *seed + 11, ProtoSeed: 77})
	m := dnn.TinyCNN()
	m.InitWeights(*seed + 42)
	if _, err := train.Train(m, trainDS, train.Config{Epochs: 6, Seed: *seed}); err != nil {
		log.Fatal(err)
	}
	ev, err := ares.NewMeasuredEvaluator(m, testDS, *seed+5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline error (pruned+clustered): %.4f\n", ev.BaselineErr)

	// Criticality-aware protection: rank streams by expected model-level
	// damage on the freshly trained model, then spend the -protect budget
	// down the ranking. The ranking is also what the scrub scheduler
	// predicts over, so it is computed whenever either consumer needs it.
	var ranks []mitigate.StreamRank
	if *protect > 0 || (*lifetimeYears > 0 && *scrubInterval == 0) {
		ranks, err = mitigate.RankModel(ev.Clustered(), cfg, mitigate.RankConfig{Seed: *seed + 7})
		if err != nil {
			log.Fatal(err)
		}
	}
	var plan mitigate.Plan
	planned := false
	if *protect > 0 {
		if plan, err = mitigate.PlanProtection(ranks, tech, *protect); err != nil {
			log.Fatal(err)
		}
		cfg = plan.Apply(cfg)
		planned = true
		fmt.Printf("protection plan: %v\n", plan)
		fmt.Printf("protected config: %v\n", cfg)
	}

	opt := campaign.Options{
		Seed:           *seed + 99,
		MaxTrials:      *trials,
		MinTrials:      *minTrials,
		CITarget:       *ciTarget,
		Workers:        *workers,
		TrialTimeout:   *timeout,
		CheckpointPath: *checkpoint,
		Resume:         *resume,
		Fsync:          tel.SyncPolicy(),
		LockCheckpoint: tel.LockCheckpoint(),
	}
	if *progress > 0 {
		opt.Progress = os.Stderr
		opt.ProgressEvery = *progress
	}

	if *xbar.Enabled {
		runCrossbar(ctx, ev, m, tech, xcfgs, xbar.Planned(), opt)
		return
	}

	if *compare {
		if *eccList != "" || *slcList != "" || *protect > 0 || *lifetimeYears > 0 || *fleetN > 0 {
			log.Fatal("faultsim: -compare-encodings runs bare per-encoding configs; drop -ecc/-slc/-protect/-lifetime-years/-fleet")
		}
		runCompare(ctx, ev, tech, *bpc, *degrade, opt)
		return
	}

	if *lifetimeYears > 0 {
		if *fleetN > 0 {
			log.Fatal("faultsim: -fleet does not support -lifetime-years (one lifetime trial spans every epoch config; run it single-process)")
		}
		code := runLifetime(ctx, ev, m, cfg, opt, lifetimeArgs{
			years:      *lifetimeYears,
			interval:   *scrubInterval,
			ranks:      ranks,
			plan:       plan,
			planned:    planned,
			checkpoint: *checkpoint,
		})
		if code != 0 {
			tel.Dump() // os.Exit skips the deferred dump
			os.Exit(code)
		}
		return
	}

	label := cfg.String()
	run := func(ctx context.Context, t campaign.Trial) (campaign.Sample, error) {
		delta, st, err := ev.EvalTrial(ctx, cfg, t.Seed)
		if err != nil {
			return campaign.Sample{}, err
		}
		return campaign.Sample{
			Value: delta,
			Extra: map[string]float64{
				"faults":    float64(st.Faults),
				"corrected": float64(st.Corrected),
				"detected":  float64(st.Detected),
				"degraded":  float64(st.DegradedBlocks),
				"mismatch":  st.Mismatch,
				"nsr":       st.ValueNSR,
			},
		}, nil
	}
	start := time.Now()
	var res *campaign.Result
	var runErr error
	if *fleetN > 0 {
		// Fleet mode: the trial space is cut into lease-claimed shards run
		// by N in-process workers. Completed trials live in shard WALs, so
		// a killed run resumes from -fleet-dir; the merge is bit-identical
		// to the single-campaign path.
		res, runErr = cliutil.FleetRun(ctx, *fleetN, *fleetDir, []string{label}, run, opt)
		if runErr != nil {
			log.Fatal(runErr)
		}
	} else {
		c, err := campaign.New([]string{label}, run, opt)
		if err != nil {
			log.Fatal(err)
		}
		res, runErr = c.Run(ctx)
		if runErr != nil && (res == nil || !res.Interrupted) {
			log.Fatal(runErr)
		}
		printRecovery(c)
	}

	cr := res.Config(label)
	fmt.Printf("\ncampaign: %d trials executed, %d reused from checkpoint, %d skipped by early stop (%.1fs)\n",
		res.Executed, res.Reused, res.Skipped, time.Since(start).Seconds())
	fmt.Printf("over %d fault maps:\n", cr.N)
	fmt.Printf("  faults/map:        %.1f (ECC corrected %.1f, detected %.1f, blocks degraded %.1f)\n",
		cr.Extra["faults"], cr.Extra["corrected"], cr.Extra["detected"], cr.Extra["degraded"])
	fmt.Printf("  index mismatch:    %.5f of weights\n", cr.Extra["mismatch"])
	fmt.Printf("  weight NSR:        %.5g\n", cr.Extra["nsr"])
	fmt.Printf("  error delta:       mean +%.4f ±%.4f (95%% CI), worst +%.4f\n", cr.Mean, cr.CIHalf, cr.Max)
	if cr.EarlyStopped {
		fmt.Printf("  early stop:        CI target %.4g reached after %d trials\n", *ciTarget, cr.N)
	}
	for _, te := range cr.Errors {
		fmt.Printf("  failed trial:      %v\n", te)
	}
	fmt.Printf("  ITN bound:         %.4f -> %s\n", m.Meta.ErrorBound,
		verdict(cr.Mean <= m.Meta.ErrorBound))
	if res.Interrupted {
		if *checkpoint != "" {
			fmt.Printf("interrupted: partial aggregates above; rerun with -resume -checkpoint %s to finish\n", *checkpoint)
		} else {
			fmt.Println("interrupted: partial aggregates above (set -checkpoint to make runs resumable)")
		}
		tel.Dump() // os.Exit skips the deferred dump
		os.Exit(130)
	}
}

// runCompare runs the same write-time campaign under each compressed
// encoding and prints a side-by-side table: storage density (encoded
// bits as a fraction of the dense clustered baseline), fault blast
// radius (weights corrupted per uncorrected fault event — the
// misalignment-cascade signature), and campaign throughput. The 2:4 row
// runs compute-direct: corrupted streams feed the sparse kernels with
// no dense materialization.
func runCompare(ctx context.Context, ev *ares.MeasuredEvaluator, tech envm.Tech, bpc int, degrade bool, opt campaign.Options) {
	kinds := []sparse.Kind{sparse.KindCSR, sparse.KindBitMask, sparse.Kind24}
	totalWeights := 0
	var denseBits int64
	for _, cl := range ev.Clustered() {
		totalWeights += len(cl.Indices)
		denseBits += int64(len(cl.Indices) * cl.IndexBits)
	}
	fmt.Printf("\n%-10s %8s %10s %14s %9s %12s %10s\n",
		"encoding", "density", "bits/wt", "blast wts/flt", "trials/s", "mean +delta", "worst")
	for _, kind := range kinds {
		cfg := ares.Config{
			Tech:      tech,
			Encoding:  kind,
			Default:   ares.StreamPolicy{BPC: bpc},
			Overrides: map[string]ares.StreamPolicy{},
			Degrade:   degrade,
		}
		if err := cfg.Validate(); err != nil {
			log.Fatal(err)
		}
		var encBits int64
		for _, cl := range ev.Clustered() {
			enc, err := ares.EncodeLayer(cl, cfg)
			if err != nil {
				log.Fatal(err)
			}
			encBits += enc.SizeBits()
		}
		run := func(ctx context.Context, t campaign.Trial) (campaign.Sample, error) {
			delta, st, err := ev.EvalTrial(ctx, cfg, t.Seed)
			if err != nil {
				return campaign.Sample{}, err
			}
			return campaign.Sample{
				Value: delta,
				Extra: map[string]float64{
					"faults":   float64(st.Faults),
					"mismatch": st.Mismatch,
				},
			}, nil
		}
		label := cfg.String()
		c, err := campaign.New([]string{label}, run, opt)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, runErr := c.Run(ctx)
		if runErr != nil {
			log.Fatal(runErr)
		}
		elapsed := time.Since(start).Seconds()
		cr := res.Config(label)
		blast := 0.0
		if cr.Extra["faults"] > 0 {
			blast = cr.Extra["mismatch"] * float64(totalWeights) / cr.Extra["faults"]
		}
		tps := 0.0
		if elapsed > 0 {
			tps = float64(res.Executed) / elapsed
		}
		fmt.Printf("%-10v %7.1f%% %10.2f %14.2f %9.1f %12.4f %10.4f\n",
			kind, 100*float64(encBits)/float64(denseBits),
			float64(encBits)/float64(totalWeights), blast, tps, cr.Mean, cr.Max)
	}
	fmt.Printf("dense clustered baseline: %d weights, %.2f bits/wt\n",
		totalWeights, float64(denseBits)/float64(totalWeights))
}

// lifetimeArgs bundles the lifetime-mode inputs main hands to
// runLifetime.
type lifetimeArgs struct {
	years, interval float64
	ranks           []mitigate.StreamRank
	plan            mitigate.Plan
	planned         bool
	checkpoint      string
}

// runLifetime simulates la.years of deployment: every campaign trial is
// one full deployment (age -> inject -> correct -> rewrite per epoch),
// and every epoch is its own campaign config with its own checkpoint
// rows and aggregates. Returns the process exit code (0 on a clean,
// bound-holding run).
func runLifetime(ctx context.Context, ev *ares.MeasuredEvaluator, m *dnn.Model,
	cfg ares.Config, opt campaign.Options, la lifetimeArgs) int {
	bound := m.Meta.ErrorBound
	lp := ares.LifetimePolicy{Years: la.years, FloorDelta: bound}
	switch {
	case la.interval > 0:
		lp.ScrubIntervalYears = la.interval
	case la.interval == 0:
		// Ask the scheduler for the longest interval holding the ITN
		// bound. When -protect did not run, predict over a bare plan
		// mirroring the configuration as flagged.
		pl := la.plan
		if !la.planned {
			pl = mitigate.Plan{
				Policies:  make(map[string]ares.StreamPolicy, len(la.ranks)),
				BlockBits: cfg.BlockBits(),
			}
			for _, r := range la.ranks {
				pl.Policies[r.Name] = cfg.PolicyFor(r.Name)
			}
		}
		dep := mitigate.Deployment{
			Tech:          cfg.Tech,
			LifetimeYears: la.years,
			DeltaBound:    bound,
			Sens:          ares.Sensitivity(m.Name),
			Headroom:      ares.Headroom(m.Classes, ev.BaselineErr),
		}
		sp, err := mitigate.PlanScrub(dep, la.ranks, pl)
		if err != nil {
			log.Fatal(err)
		}
		if sp.ScrubNeeded {
			fmt.Printf("scrub schedule: every %.2f years (%d epochs, %d rewrites, %.2g of endurance), predicted delta %.4f\n",
				sp.IntervalYears, sp.Epochs, sp.Rewrites, sp.EnduranceFrac, sp.PredictedDelta)
		} else {
			fmt.Printf("scrub schedule: none needed (predicted %.1f-year delta %.4f within the %.4f bound)\n",
				la.years, sp.NoScrubDelta, bound)
		}
		if !sp.Feasible {
			fmt.Printf("warning: no feasible schedule — %s\n", sp.Reason)
		}
		lp = sp.Policy(dep)
	default:
		// Negative interval: write once, never refresh.
	}
	if err := lp.Validate(); err != nil {
		log.Fatal(err)
	}
	if lp.Scrubbed() {
		fmt.Printf("lifetime: %.1f years, scrubbing every %.2f years (%d epochs)\n",
			la.years, lp.ScrubIntervalYears, lp.EpochCount())
	} else {
		fmt.Printf("lifetime: %.1f years unscrubbed, %d evaluation epochs\n", la.years, lp.EpochCount())
	}

	epochs := lp.EpochCount()
	label := cfg.String()
	configs, err := campaign.LifetimeConfigs(label, epochs)
	if err != nil {
		log.Fatal(err)
	}
	sim := func(ctx context.Context, trial int, seed uint64) ([]campaign.Sample, error) {
		ls, err := ev.LifetimeTrial(ctx, cfg, lp, seed)
		if err != nil {
			return nil, err
		}
		out := make([]campaign.Sample, len(ls.Epochs))
		for e, es := range ls.Epochs {
			out[e] = campaign.Sample{
				Value: es.DeltaErr,
				Extra: map[string]float64{
					"age":       es.AgeYears,
					"faults":    float64(es.Stats.Faults),
					"corrected": float64(es.Stats.Corrected),
					"detected":  float64(es.Stats.Detected),
					"degraded":  float64(es.Stats.DegradedBlocks),
					"mismatch":  es.Stats.Mismatch,
				},
			}
		}
		return out, nil
	}
	c, err := campaign.New(configs, campaign.LifetimeRun(label, epochs, opt.Seed, sim), opt)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, runErr := c.Run(ctx)
	if runErr != nil && (res == nil || !res.Interrupted) {
		log.Fatal(runErr)
	}
	printRecovery(c)

	fmt.Printf("\nlifetime campaign: %d epoch-trials executed, %d reused from checkpoint, %d skipped (%.1fs)\n",
		res.Executed, res.Reused, res.Skipped, time.Since(start).Seconds())
	fmt.Printf("  %-5s  %-7s  %-24s  %-8s  %-14s  %-8s  %s\n",
		"epoch", "age", "error delta (95% CI)", "faults", "ecc corr/det", "degraded", "vs bound")
	worst := 0.0
	for e, id := range configs {
		cr := res.Config(id)
		if cr.N == 0 {
			fmt.Printf("  %-5d  (no completed trials)\n", e)
			continue
		}
		if cr.Mean > worst {
			worst = cr.Mean
		}
		fmt.Printf("  %-5d  %5.2fy  +%.4f ±%.4f%10s  %-8.1f  %6.1f/%-7.1f  %-8.1f  %s\n",
			e, cr.Extra["age"], cr.Mean, cr.CIHalf, "",
			cr.Extra["faults"], cr.Extra["corrected"], cr.Extra["detected"], cr.Extra["degraded"],
			verdict(cr.Mean <= bound))
		for _, te := range cr.Errors {
			fmt.Printf("         failed trial: %v\n", te)
		}
	}
	fmt.Printf("  ITN bound %.4f over the whole deployment -> %s (worst epoch mean +%.4f)\n",
		bound, verdict(worst <= bound), worst)
	if res.Interrupted {
		if la.checkpoint != "" {
			fmt.Printf("interrupted: partial aggregates above; rerun with -resume -checkpoint %s to finish\n", la.checkpoint)
		} else {
			fmt.Println("interrupted: partial aggregates above (set -checkpoint to make runs resumable)")
		}
		return 130
	}
	return 0
}

// printRecovery summarizes what a resumed campaign salvaged from its
// checkpoint: the torn tail it repaired and the trials it replayed
// instead of re-executing.
func printRecovery(c *campaign.Campaign) {
	rec := c.Recovery()
	if !rec.Resumed {
		return
	}
	line := fmt.Sprintf("recovery: repaired tail: %d bytes, replayed %d trials", rec.RepairedBytes, rec.Replayed)
	if rec.TornLines > 0 {
		line += fmt.Sprintf(", skipped %d corrupt lines", rec.TornLines)
	}
	fmt.Println(line)
}

// mustStreams splits a comma-separated stream list and validates every
// name against the streams the chosen encoding actually emits, so a typo
// like "-ecc rowcnt" fails loudly instead of silently protecting nothing.
func mustStreams(kind sparse.Kind, flagName, list string) []string {
	names := splitList(list)
	valid := core.StreamNames(kind)
	ok := make(map[string]bool, len(valid))
	for _, v := range valid {
		ok[v] = true
	}
	for _, n := range names {
		if !ok[n] {
			fmt.Fprintf(os.Stderr, "faultsim: %s: unknown stream %q for encoding %v (valid: %s)\n",
				flagName, n, kind, strings.Join(valid, ", "))
			os.Exit(2)
		}
	}
	return names
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func verdict(ok bool) string {
	if ok {
		return "ACCEPTED"
	}
	return "REJECTED"
}
