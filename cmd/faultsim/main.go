// Command faultsim runs standalone fault-injection campaigns: it trains
// the small measured model and drives (config x seed) trials through the
// resilient campaign engine (internal/campaign), reporting corruption
// statistics and classification-error deltas for a chosen storage
// configuration.
//
// Campaigns are interruptible and resumable: Ctrl-C flushes completed
// trials to the checkpoint (if -checkpoint is set) and a later run with
// -resume replays them instead of re-executing, converging to the exact
// aggregates an uninterrupted run would have produced.
//
// Usage:
//
//	faultsim -tech MLC-CTT -encoding csr -bpc 3 -ecc rowcount,colidx -trials 20
//	faultsim -trials 64 -ci-target 0.005 -checkpoint run.jsonl
//	faultsim -resume -checkpoint run.jsonl -trials 64 -ci-target 0.005
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/ares"
	"repro/internal/campaign"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/envm"
	"repro/internal/sparse"
	"repro/internal/train"
)

func main() {
	techName := flag.String("tech", "MLC-CTT", "technology (MLC-CTT, MLC-RRAM, Opt MLC-RRAM, SLC-RRAM)")
	encName := flag.String("encoding", "csr", "encoding: dense|csr|bitmask|idxsync")
	bpc := flag.Int("bpc", 3, "default bits per cell")
	eccList := flag.String("ecc", "", "comma-separated streams to ECC-protect")
	slcList := flag.String("slc", "", "comma-separated streams forced to SLC")
	trials := flag.Int("trials", 12, "maximum fault maps to sample")
	minTrials := flag.Int("min-trials", 4, "trials before early stopping may trigger")
	ciTarget := flag.Float64("ci-target", 0, "stop early once the 95% CI half-width of the error delta is below this (0 = full budget)")
	workers := flag.Int("workers", 0, "concurrent trial workers (0 = auto)")
	timeout := flag.Duration("timeout", 0, "per-trial deadline, e.g. 30s (0 = none)")
	checkpoint := flag.String("checkpoint", "", "JSONL checkpoint path (completed trials are appended)")
	resume := flag.Bool("resume", false, "replay completed trials from -checkpoint before running the rest")
	seed := flag.Uint64("seed", 1, "seed")
	progress := flag.Duration("progress", 5*time.Second, "progress-line interval on stderr (0 = silent)")
	tel := cliutil.AddFlags()
	flag.Parse()
	tel.Start()
	defer tel.Dump()

	tech, err := envm.ByName(*techName)
	if err != nil {
		log.Fatal(err)
	}
	var kind sparse.Kind
	switch strings.ToLower(*encName) {
	case "dense":
		kind = sparse.KindDense
	case "csr":
		kind = sparse.KindCSR
	case "bitmask":
		kind = sparse.KindBitMask
	case "idxsync":
		kind = sparse.KindBitMaskIdxSync
	default:
		fmt.Fprintf(os.Stderr, "faultsim: unknown encoding %q\n", *encName)
		os.Exit(2)
	}

	cfg := ares.Config{
		Tech:      tech,
		Encoding:  kind,
		Default:   ares.StreamPolicy{BPC: *bpc},
		Overrides: map[string]ares.StreamPolicy{},
	}
	for _, s := range mustStreams(kind, "-ecc", *eccList) {
		cfg.Overrides[s] = ares.StreamPolicy{BPC: *bpc, ECC: true}
	}
	for _, s := range mustStreams(kind, "-slc", *slcList) {
		cfg.Overrides[s] = ares.StreamPolicy{BPC: 1}
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	if *resume && *checkpoint == "" {
		log.Fatal("faultsim: -resume requires -checkpoint")
	}

	// SIGINT / SIGTERM cancel the campaign; completed trials are already
	// flushed to the checkpoint and the partial aggregates still print.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("config: %v\n", cfg)
	fmt.Println("training measured model (TinyCNN on synthetic data)...")
	trainDS := train.Synthesize(train.SynthConfig{N: 600, Seed: *seed + 10, ProtoSeed: 77})
	testDS := train.Synthesize(train.SynthConfig{N: 300, Seed: *seed + 11, ProtoSeed: 77})
	m := dnn.TinyCNN()
	m.InitWeights(*seed + 42)
	if _, err := train.Train(m, trainDS, train.Config{Epochs: 6, Seed: *seed}); err != nil {
		log.Fatal(err)
	}
	ev, err := ares.NewMeasuredEvaluator(m, testDS, *seed+5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline error (pruned+clustered): %.4f\n", ev.BaselineErr)

	label := cfg.String()
	run := func(ctx context.Context, t campaign.Trial) (campaign.Sample, error) {
		delta, st, err := ev.EvalTrial(ctx, cfg, t.Seed)
		if err != nil {
			return campaign.Sample{}, err
		}
		return campaign.Sample{
			Value: delta,
			Extra: map[string]float64{
				"faults":    float64(st.Faults),
				"corrected": float64(st.Corrected),
				"detected":  float64(st.Detected),
				"mismatch":  st.Mismatch,
				"nsr":       st.ValueNSR,
			},
		}, nil
	}
	opt := campaign.Options{
		Seed:           *seed + 99,
		MaxTrials:      *trials,
		MinTrials:      *minTrials,
		CITarget:       *ciTarget,
		Workers:        *workers,
		TrialTimeout:   *timeout,
		CheckpointPath: *checkpoint,
		Resume:         *resume,
	}
	if *progress > 0 {
		opt.Progress = os.Stderr
		opt.ProgressEvery = *progress
	}
	c, err := campaign.New([]string{label}, run, opt)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, runErr := c.Run(ctx)
	if runErr != nil && !res.Interrupted {
		log.Fatal(runErr)
	}

	cr := res.Config(label)
	fmt.Printf("\ncampaign: %d trials executed, %d reused from checkpoint, %d skipped by early stop (%.1fs)\n",
		res.Executed, res.Reused, res.Skipped, time.Since(start).Seconds())
	fmt.Printf("over %d fault maps:\n", cr.N)
	fmt.Printf("  faults/map:        %.1f (ECC corrected %.1f, detected %.1f)\n",
		cr.Extra["faults"], cr.Extra["corrected"], cr.Extra["detected"])
	fmt.Printf("  index mismatch:    %.5f of weights\n", cr.Extra["mismatch"])
	fmt.Printf("  weight NSR:        %.5g\n", cr.Extra["nsr"])
	fmt.Printf("  error delta:       mean +%.4f ±%.4f (95%% CI), worst +%.4f\n", cr.Mean, cr.CIHalf, cr.Max)
	if cr.EarlyStopped {
		fmt.Printf("  early stop:        CI target %.4g reached after %d trials\n", *ciTarget, cr.N)
	}
	for _, te := range cr.Errors {
		fmt.Printf("  failed trial:      %v\n", te)
	}
	fmt.Printf("  ITN bound:         %.4f -> %s\n", m.Meta.ErrorBound,
		verdict(cr.Mean <= m.Meta.ErrorBound))
	if res.Interrupted {
		if *checkpoint != "" {
			fmt.Printf("interrupted: partial aggregates above; rerun with -resume -checkpoint %s to finish\n", *checkpoint)
		} else {
			fmt.Println("interrupted: partial aggregates above (set -checkpoint to make runs resumable)")
		}
		tel.Dump() // os.Exit skips the deferred dump
		os.Exit(130)
	}
}

// mustStreams splits a comma-separated stream list and validates every
// name against the streams the chosen encoding actually emits, so a typo
// like "-ecc rowcnt" fails loudly instead of silently protecting nothing.
func mustStreams(kind sparse.Kind, flagName, list string) []string {
	names := splitList(list)
	valid := core.StreamNames(kind)
	ok := make(map[string]bool, len(valid))
	for _, v := range valid {
		ok[v] = true
	}
	for _, n := range names {
		if !ok[n] {
			fmt.Fprintf(os.Stderr, "faultsim: %s: unknown stream %q for encoding %v (valid: %s)\n",
				flagName, n, kind, strings.Join(valid, ", "))
			os.Exit(2)
		}
	}
	return names
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func verdict(ok bool) string {
	if ok {
		return "ACCEPTED"
	}
	return "REJECTED"
}
