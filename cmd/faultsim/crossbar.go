package main

// Crossbar compute-in-memory mode (-crossbar): instead of corrupting
// stored bits, each tile size maps the clustered weights onto
// differential conductance pairs and runs two campaigns — the bare
// array (programming variation + stuck-at faults, no tolerance) and
// the same array with online soft-error detection + remap scrubbing —
// printing a before/after table per tile size against the model's ITN
// bound. The detection threshold and remap budget come from
// mitigate.PlanOnline unless -detect-sigma pins the threshold.

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/ares"
	"repro/internal/campaign"
	"repro/internal/crossbar"
	"repro/internal/dnn"
	"repro/internal/envm"
	"repro/internal/mitigate"
)

// xbarDeployment is the deployment the online planner sizes budgets
// for: the model's own ITN bound over a 5-year deployment with the
// scrub scheduler's default endurance allowance.
func xbarDeployment(tech envm.Tech, m *dnn.Model, baselineErr float64) mitigate.Deployment {
	return mitigate.Deployment{
		Tech:          tech,
		LifetimeYears: 5,
		DeltaBound:    m.Meta.ErrorBound,
		Sens:          ares.Sensitivity(m.Name),
		Headroom:      ares.Headroom(m.Classes, baselineErr),
	}
}

// xbarCampaign runs one crossbar campaign config and returns its
// aggregate row.
func xbarCampaign(ctx context.Context, ev *ares.MeasuredEvaluator, cfg ares.Config,
	opt campaign.Options) (*campaign.ConfigResult, error) {
	run := func(ctx context.Context, t campaign.Trial) (campaign.Sample, error) {
		delta, st, err := ev.EvalTrial(ctx, cfg, t.Seed)
		if err != nil {
			return campaign.Sample{}, err
		}
		return campaign.Sample{
			Value: delta,
			Extra: map[string]float64{
				"faults":   float64(st.Faults),
				"detected": float64(st.Detected),
				"remapped": float64(st.Corrected),
				"zeroed":   float64(st.DegradedBlocks),
				"mismatch": st.Mismatch,
			},
		}, nil
	}
	label := cfg.String()
	c, err := campaign.New([]string{label}, run, opt)
	if err != nil {
		return nil, err
	}
	res, err := c.Run(ctx)
	if err != nil && (res == nil || !res.Interrupted) {
		return nil, err
	}
	return res.Config(label), nil
}

// runCrossbar is the -crossbar entry point: one before/after row per
// -tile size.
func runCrossbar(ctx context.Context, ev *ares.MeasuredEvaluator, m *dnn.Model,
	tech envm.Tech, xcfgs []crossbar.Config, planned bool, opt campaign.Options) {
	bound := m.Meta.ErrorBound
	dep := xbarDeployment(tech, m, ev.BaselineErr)
	if planned {
		fmt.Printf("crossbar: %d tile size(s); detection threshold and remap budget from the online planner (%.0f-year deployment, bound %.4f)\n",
			len(xcfgs), dep.LifetimeYears, bound)
	} else {
		fmt.Printf("crossbar: %d tile size(s); detection threshold pinned by -detect-sigma\n", len(xcfgs))
	}
	fmt.Printf("\n%-10s %6s %6s %7s %7s %18s %18s %11s %11s %9s\n",
		"tile", "segs", "tiles", "detect", "budget",
		"unmitigated", "mitigated", "remaps/map", "zeroed/map", "vs bound")
	start := time.Now()
	for _, xc := range xcfgs {
		// Before: the bare array — no detection, no remapping.
		bare := xc
		bare.DetectSigma, bare.MaxRemaps = 0, 0
		bareCfg := ares.Config{Tech: tech, Crossbar: &bare}
		segments, tiles, err := ev.XbarGeometry(bareCfg)
		if err != nil {
			log.Fatal(err)
		}

		// After: online tolerance, policy from the planner or the flag.
		mit := xc
		if planned {
			plan, err := mitigate.PlanOnline(dep, xc, segments, tiles)
			if err != nil {
				log.Fatal(err)
			}
			if !plan.Feasible {
				fmt.Printf("  %s: planner warning: %s\n", xc.String(), plan.Reason)
			}
			mit = plan.Apply(xc)
		}

		before, err := xbarCampaign(ctx, ev, bareCfg, opt)
		if err != nil {
			log.Fatal(err)
		}
		after, err := xbarCampaign(ctx, ev, ares.Config{Tech: tech, Crossbar: &mit}, opt)
		if err != nil {
			log.Fatal(err)
		}
		if before == nil || after == nil || before.N == 0 || after.N == 0 {
			fmt.Printf("%-10s (interrupted before any trial completed)\n", xc.String())
			if ctx.Err() != nil {
				break
			}
			continue
		}
		fmt.Printf("%-10s %6d %6d %6.2fσ %7d %8s%9s %8s%9s %11.1f %11.1f %9s\n",
			fmt.Sprintf("%dx%d", xc.Rows, xc.Cols), segments, tiles,
			mit.DetectSigma, mit.MaxRemaps,
			fmt.Sprintf("+%.4f", before.Mean), fmt.Sprintf("±%.4f", before.CIHalf),
			fmt.Sprintf("+%.4f", after.Mean), fmt.Sprintf("±%.4f", after.CIHalf),
			after.Extra["remapped"], after.Extra["zeroed"],
			verdict(after.Mean <= bound))
		for _, te := range append(before.Errors, after.Errors...) {
			fmt.Printf("  failed trial: %v\n", te)
		}
	}
	fmt.Printf("\n%d fault maps per cell, %.1fs total; ITN bound %.4f (unmitigated rows are diagnostic, the verdict scores the mitigated array)\n",
		opt.MaxTrials, time.Since(start).Seconds(), bound)
}
