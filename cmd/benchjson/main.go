// Command benchjson turns `go test -bench` output into a tracked JSON
// baseline. It tees stdin to stdout (so the human-readable benchmark
// table still shows in the terminal / CI log) while parsing every
// benchmark result line into a machine-readable record, then writes the
// whole set to -out as indented JSON.
//
// Usage:
//
//	go test -run '^$' -bench Throughput -benchmem . | benchjson -out BENCH_inference.json
//
// Each benchmark line has the shape
//
//	BenchmarkName-8   123   456789 ns/op   12.3 trials/s   0 B/op   0 allocs/op
//
// i.e. a name, an iteration count, then (value, unit) pairs — including
// custom b.ReportMetric units. All pairs land in the record's metrics
// map keyed by unit. Header lines (goos/goarch/pkg/cpu) are captured
// verbatim as environment context.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/durable"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the file written to -out.
type Report struct {
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Env        map[string]string `json:"env,omitempty"`
	Benchmarks []Result          `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_inference.json", "output JSON path")
	flag.Parse()

	rep := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Env:        map[string]string{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if res, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, res)
			continue
		}
		// Benchmark header context (goos: linux, cpu: ..., pkg: ...).
		if k, v, found := strings.Cut(line, ": "); found && !strings.Contains(k, " ") {
			switch k {
			case "goos", "goarch", "pkg", "cpu":
				rep.Env[k] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin; not writing", *out)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	// Atomic replace: a crash (or a concurrent reader) mid-write must see
	// the previous baseline or the new one, never a truncated JSON file.
	if err := durable.WriteFileAtomic(nil, *out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

// parseLine parses one `Benchmark... N  v1 u1  v2 u2 ...` result line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so records are comparable across hosts.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	res := Result{
		Name:       name,
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	rest := fields[2:]
	for i := 0; i+1 < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[rest[i+1]] = v
	}
	if len(res.Metrics) == 0 {
		return Result{}, false
	}
	return res, true
}
