// Command nvsweep characterizes eNVM memory arrays (the NVSim-like flow):
// for a technology, capacity, and bits-per-cell it sweeps array
// organizations and prints either the full sweep, the Pareto frontier,
// or the single target-optimal point.
//
// Usage:
//
//	nvsweep -tech MLC-CTT -mb 12 -bpc 2 -target edp
//	nvsweep -tech SLC-RRAM -mb 32 -bpc 1 -pareto
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/envm"
	"repro/internal/nvsim"
)

func main() {
	techName := flag.String("tech", "MLC-CTT", "technology name")
	techFile := flag.String("techfile", "", "JSON file with a custom technology definition (overrides -tech)")
	capMB := flag.Float64("mb", 4, "capacity in decimal MB")
	bpc := flag.Int("bpc", 1, "bits per cell")
	targetName := flag.String("target", "edp", "optimization target: edp|area|latency|energy|leakage")
	pareto := flag.Bool("pareto", false, "print the area/latency/energy Pareto frontier")
	full := flag.Bool("full", false, "print every organization")
	flag.Parse()

	var tech envm.Tech
	var err error
	if *techFile != "" {
		f, ferr := os.Open(*techFile)
		if ferr != nil {
			log.Fatal(ferr)
		}
		tech, err = envm.LoadTech(f)
		f.Close()
	} else {
		tech, err = envm.ByName(*techName)
	}
	if err != nil {
		log.Fatal(err)
	}
	var target nvsim.Target
	switch strings.ToLower(*targetName) {
	case "edp":
		target = nvsim.OptReadEDP
	case "area":
		target = nvsim.OptArea
	case "latency":
		target = nvsim.OptReadLatency
	case "energy":
		target = nvsim.OptReadEnergy
	case "leakage":
		target = nvsim.OptLeakage
	default:
		fmt.Fprintf(os.Stderr, "nvsweep: unknown target %q\n", *targetName)
		os.Exit(2)
	}

	cfg := nvsim.Config{
		Tech: tech, BPC: *bpc,
		CapacityBits: int64(*capMB * 8e6),
		Target:       target,
	}
	header := func() {
		fmt.Printf("%6s %5s %5s %9s %9s %10s %12s %10s %10s\n",
			"banks", "mats", "width", "rows", "cols", "area mm2", "latency ns", "pJ/access", "GB/s")
	}
	row := func(r nvsim.Result) {
		fmt.Printf("%6d %5d %5d %9d %9d %10.3f %12.2f %10.2f %10.2f\n",
			r.Banks, r.Mats, r.DataWidth, r.Rows, r.Cols,
			r.AreaMM2, r.ReadLatencyNs, r.ReadEnergyPJ, r.ReadBandwidthGBs)
	}

	fmt.Printf("%s, %.1f MB, %d bit/cell\n", tech.Name, *capMB, *bpc)
	switch {
	case *full:
		header()
		for _, r := range nvsim.Sweep(cfg) {
			row(r)
		}
	case *pareto:
		fmt.Println("Pareto frontier (area x latency x energy):")
		header()
		for _, r := range nvsim.Pareto(nvsim.Sweep(cfg)) {
			row(r)
		}
	default:
		r := nvsim.Characterize(cfg)
		header()
		row(r)
		fmt.Printf("write time (full array): %.4g s; leakage %.3f mW\n", r.WriteTimeSec, r.LeakageMW)
	}
}
