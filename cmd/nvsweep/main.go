// Command nvsweep characterizes eNVM memory arrays (the NVSim-like flow):
// for a technology, capacity, and bits-per-cell it sweeps array
// organizations and prints either the full sweep, the Pareto frontier,
// or the single target-optimal point.
//
// The sweep runs through the resilient campaign engine
// (internal/campaign): organizations characterize in parallel, Ctrl-C
// cancels cleanly (completed points are flushed to the checkpoint when
// -checkpoint is set), and -resume replays finished points instead of
// recomputing them.
//
// Usage:
//
//	nvsweep -tech MLC-CTT -mb 12 -bpc 2 -target edp
//	nvsweep -tech SLC-RRAM -mb 32 -bpc 1 -pareto
//	nvsweep -mb 64 -bpc 2 -full -checkpoint sweep.jsonl
//	nvsweep -mb 64 -bpc 2 -full -resume -checkpoint sweep.jsonl
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/campaign"
	"repro/internal/cliutil"
	"repro/internal/durable"
	"repro/internal/envm"
	"repro/internal/nvsim"
	"repro/internal/sparse"
	"repro/internal/stats"
)

func main() {
	techName := flag.String("tech", "MLC-CTT", "technology name")
	techFile := flag.String("techfile", "", "JSON file with a custom technology definition (overrides -tech)")
	capMB := flag.Float64("mb", 4, "capacity in decimal MB")
	bpc := flag.Int("bpc", 1, "bits per cell")
	targetName := flag.String("target", "edp", "optimization target: edp|area|latency|energy|leakage")
	encName := flag.String("encoding", "", "size the array for an encoded model: scale -mb by the encoding's density over a synthetic clustered proxy ("+strings.Join(cliutil.EncodingNames(), "|")+"; empty = raw capacity)")
	proxySparsity := flag.Float64("sparsity", 0.9, "synthetic proxy sparsity for the -encoding density estimate")
	pareto := flag.Bool("pareto", false, "print the area/latency/energy Pareto frontier")
	full := flag.Bool("full", false, "print every organization")
	timeout := flag.Duration("timeout", 0, "per-organization characterization deadline (0 = none)")
	workers := flag.Int("workers", 0, "concurrent characterization workers (0 = auto)")
	checkpoint := flag.String("checkpoint", "", "JSONL checkpoint path (completed points are appended)")
	resume := flag.Bool("resume", false, "replay completed points from -checkpoint before computing the rest")
	outPath := flag.String("out", "", "write the characterized points as JSON to this path (atomic replace)")
	maxTrials := flag.Int("max-trials", 1, "samples per organization (the analytic model is deterministic; >1 only re-verifies)")
	ciTarget := flag.Float64("ci-target", 0, "early-stop CI half-width target when -max-trials > 1")
	progress := flag.Duration("progress", 0, "progress-line interval on stderr (0 = silent)")
	fleetN := flag.Int("fleet", 0, "run the sweep as an N-worker single-machine fleet (lease-claimed shards, kill-safe, bit-identical merge)")
	fleetDir := flag.String("fleet-dir", "", "fleet directory for -fleet (default: a temporary directory; an existing fleet dir is resumed)")
	xbar := cliutil.AddXbarFlags()
	tel := cliutil.AddFlags()
	flag.Parse()
	tel.Start()
	defer tel.Dump()

	var tech envm.Tech
	var err error
	if *techFile != "" {
		f, ferr := os.Open(*techFile)
		if ferr != nil {
			log.Fatal(ferr)
		}
		tech, err = envm.LoadTech(f)
		f.Close()
	} else {
		tech, err = envm.ByName(*techName)
	}
	if err != nil {
		log.Fatal(err)
	}
	var target nvsim.Target
	switch strings.ToLower(*targetName) {
	case "edp":
		target = nvsim.OptReadEDP
	case "area":
		target = nvsim.OptArea
	case "latency":
		target = nvsim.OptReadLatency
	case "energy":
		target = nvsim.OptReadEnergy
	case "leakage":
		target = nvsim.OptLeakage
	default:
		fmt.Fprintf(os.Stderr, "nvsweep: unknown target %q\n", *targetName)
		os.Exit(2)
	}
	if *resume && *checkpoint == "" {
		log.Fatal("nvsweep: -resume requires -checkpoint")
	}

	cfg := nvsim.Config{
		Tech: tech, BPC: *bpc,
		CapacityBits: int64(*capMB * 8e6),
		Target:       target,
	}
	if *encName != "" {
		kind, err := cliutil.ParseEncoding(*encName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvsweep: %v\n", err)
			os.Exit(2)
		}
		density, err := encodedDensity(kind, *proxySparsity)
		if err != nil {
			log.Fatal(err)
		}
		cfg.CapacityBits = int64(float64(cfg.CapacityBits) * density)
		fmt.Fprintf(os.Stderr, "nvsweep: encoding %v stores %.1f%% of the dense clustered bits; sweeping %.2f MB effective capacity\n",
			kind, 100*density, float64(cfg.CapacityBits)/8e6)
	}
	if *xbar.Enabled {
		// Crossbar compute-in-memory capacity: every weight occupies a
		// differential device pair, plus the spare columns the online
		// remapper draws from — there is no compressed encoding to
		// density-scale. The first -tile entry sizes the array; the dense
		// clustered proxy (4-bit indices, same as encodedDensity) is the
		// reference the -mb capacity was stated in.
		if *encName != "" {
			log.Fatal("nvsweep: -crossbar stores weights as conductances, not encoded bits; drop -encoding")
		}
		xcfgs, err := xbar.Configs(tech)
		if err != nil {
			log.Fatal(err)
		}
		xc := xcfgs[0]
		const proxyIdxBits = 4
		overhead := float64(xc.SpareCols) / float64(xc.Cols)
		cells := 2 * (1 + overhead)
		factor := cells * float64(*bpc) / proxyIdxBits
		cfg.CapacityBits = int64(float64(cfg.CapacityBits) * factor)
		fmt.Fprintf(os.Stderr, "nvsweep: crossbar %dx%d tiles store %.2f cells/weight (differential pair + %.1f%% spare columns) at %d bit/cell = %.1f bits/weight vs %d-bit dense indices; sweeping %.2f MB effective capacity\n",
			xc.Rows, xc.Cols, cells, 100*overhead, *bpc, cells*float64(*bpc), proxyIdxBits,
			float64(cfg.CapacityBits)/8e6)
	}
	if err := nvsim.Validate(cfg); err != nil {
		log.Fatal(err)
	}

	ctx, stop := cliutil.NotifyContext(context.Background())
	defer stop()

	// One campaign config per organization point; the characterization is
	// a pure function of the organization, so the campaign gives the sweep
	// parallelism, cancellation, and checkpoint/resume for free.
	orgs := nvsim.Organizations(cfg)
	labels := make([]string, len(orgs))
	byLabel := make(map[string]nvsim.Organization, len(orgs))
	for i, o := range orgs {
		labels[i] = fmt.Sprintf("b%02d_m%02d_w%03d", o.Banks, o.Mats, o.DataWidth)
		byLabel[labels[i]] = o
	}
	run := func(ctx context.Context, t campaign.Trial) (campaign.Sample, error) {
		org, ok := byLabel[t.Config]
		if !ok {
			return campaign.Sample{}, fmt.Errorf("nvsweep: unknown organization %q", t.Config)
		}
		r, feasible := nvsim.CharacterizeOrg(cfg, org)
		if !feasible {
			return campaign.Sample{}, fmt.Errorf("nvsweep: organization %q infeasible", t.Config)
		}
		return campaign.Sample{
			Value: nvsim.Score(r, target),
			Extra: map[string]float64{
				"rows": float64(r.Rows), "cols": float64(r.Cols),
				"area": r.AreaMM2, "lat": r.ReadLatencyNs, "pj": r.ReadEnergyPJ,
				"gbs": r.ReadBandwidthGBs, "leak": r.LeakageMW, "wsec": r.WriteTimeSec,
			},
		}, nil
	}
	opt := campaign.Options{
		Seed:           1,
		MaxTrials:      *maxTrials,
		CITarget:       *ciTarget,
		Workers:        *workers,
		TrialTimeout:   *timeout,
		CheckpointPath: *checkpoint,
		Resume:         *resume,
		Fsync:          tel.SyncPolicy(),
		LockCheckpoint: tel.LockCheckpoint(),
	}
	if *progress > 0 {
		opt.Progress = os.Stderr
		opt.ProgressEvery = *progress
	}
	var res *campaign.Result
	var runErr error
	if *fleetN > 0 {
		res, runErr = cliutil.FleetRun(ctx, *fleetN, *fleetDir, labels, run, opt)
		if runErr != nil {
			log.Fatal(runErr)
		}
	} else {
		c, err := campaign.New(labels, run, opt)
		if err != nil {
			log.Fatal(err)
		}
		res, runErr = c.Run(ctx)
		if runErr != nil && (res == nil || !res.Interrupted) {
			log.Fatal(runErr)
		}
	}

	var points []nvsim.Result
	for _, cr := range res.Configs {
		if cr.N == 0 {
			continue
		}
		o := byLabel[cr.Config]
		points = append(points, nvsim.Result{
			Tech: tech.Name, BPC: *bpc, Capacity: cfg.CapacityBits,
			Banks: o.Banks, Mats: o.Mats, DataWidth: o.DataWidth,
			Rows: int(cr.Extra["rows"]), Cols: int(cr.Extra["cols"]),
			AreaMM2: cr.Extra["area"], ReadLatencyNs: cr.Extra["lat"],
			ReadEnergyPJ: cr.Extra["pj"], ReadBandwidthGBs: cr.Extra["gbs"],
			LeakageMW: cr.Extra["leak"], WriteTimeSec: cr.Extra["wsec"],
		})
	}

	header := func() {
		fmt.Printf("%6s %5s %5s %9s %9s %10s %12s %10s %10s\n",
			"banks", "mats", "width", "rows", "cols", "area mm2", "latency ns", "pJ/access", "GB/s")
	}
	row := func(r nvsim.Result) {
		fmt.Printf("%6d %5d %5d %9d %9d %10.3f %12.2f %10.2f %10.2f\n",
			r.Banks, r.Mats, r.DataWidth, r.Rows, r.Cols,
			r.AreaMM2, r.ReadLatencyNs, r.ReadEnergyPJ, r.ReadBandwidthGBs)
	}

	if *outPath != "" && len(points) > 0 {
		data, err := json.MarshalIndent(points, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		data = append(data, '\n')
		// Atomic replace: an interrupted dump leaves the previous file, not
		// half a JSON array.
		if err := durable.WriteFileAtomic(nil, *outPath, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "nvsweep: wrote %d points to %s\n", len(points), *outPath)
	}

	fmt.Printf("%s, %.1f MB, %d bit/cell (%d/%d organizations characterized, %d reused)\n",
		tech.Name, *capMB, *bpc, len(points), len(orgs), res.Reused)
	switch {
	case *full:
		header()
		for _, r := range points {
			row(r)
		}
	case *pareto:
		fmt.Println("Pareto frontier (area x latency x energy):")
		header()
		for _, r := range nvsim.Pareto(points) {
			row(r)
		}
	default:
		if len(points) == 0 {
			log.Fatal("nvsweep: no organization characterized")
		}
		best := points[0]
		for _, p := range points[1:] {
			if nvsim.Score(p, target) < nvsim.Score(best, target) {
				best = p
			}
		}
		header()
		row(best)
		fmt.Printf("write time (full array): %.4g s; leakage %.3f mW\n", best.WriteTimeSec, best.LeakageMW)
	}
	if res.Interrupted {
		if *checkpoint != "" {
			fmt.Printf("interrupted: partial sweep above; rerun with -resume -checkpoint %s to finish\n", *checkpoint)
		} else {
			fmt.Println("interrupted: partial sweep above (set -checkpoint to make sweeps resumable)")
		}
		tel.Dump() // os.Exit skips the deferred dump
		os.Exit(130)
	}
}

// encodedDensity estimates an encoding's storage density — encoded bits
// as a fraction of the dense clustered baseline — over a synthetic
// pruned+clustered proxy layer (256x256 weights, 4-bit cluster indices,
// index 0 = pruned). Good enough to size an array for an encoded model
// without training one; the measured pipeline (faultsim
// -compare-encodings) reports exact per-model numbers.
func encodedDensity(kind sparse.Kind, sparsity float64) (float64, error) {
	if sparsity < 0 || sparsity >= 1 {
		return 0, fmt.Errorf("nvsweep: proxy sparsity %v must be in [0, 1)", sparsity)
	}
	const rows, cols, idxBits = 256, 256, 4
	src := stats.NewSource(12)
	indices := make([]uint8, rows*cols)
	for i := range indices {
		if !src.Bernoulli(sparsity) {
			indices[i] = uint8(1 + src.Intn(1<<idxBits-1))
		}
	}
	var enc sparse.Encoding
	var err error
	if kind == sparse.Kind24 {
		// Centroid table for magnitude-based 2-of-4 selection: index 0 is
		// the pruned zero, the rest spread over [-1, 1].
		centroids := make([]float32, 1<<idxBits)
		for i := 1; i < len(centroids); i++ {
			centroids[i] = float32(i)/float32(len(centroids)-1)*2 - 1
		}
		enc, err = sparse.Encode24(indices, rows, cols, idxBits, centroids)
	} else {
		enc, err = sparse.Encode(kind, indices, rows, cols, idxBits)
	}
	if err != nil {
		return 0, err
	}
	return float64(enc.SizeBits()) / float64(rows*cols*idxBits), nil
}
