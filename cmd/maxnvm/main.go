// Command maxnvm regenerates the paper's tables and figures from the
// MaxNVM reproduction.
//
// Usage:
//
//	maxnvm [flags] <experiment>...
//
// Experiments: fig1 fig2 table2 fig5 fig6 fig8 fig9 fig10 fig11 table4
// table5 headlines all
//
// Flags:
//
//	-model    restrict per-model experiments (fig6) to one model
//	-models   comma-separated model set for the multi-model tables
//	-seed     experiment seed (default 1)
//	-cap      per-layer weight cap for profiling (default 262144)
//	-trials   damage probe trials (default 3)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exper"
)

func main() {
	model := flag.String("model", "", "single model for fig6 (default: all)")
	modelsFlag := flag.String("models", "LeNet5,VGG12,VGG16,ResNet50", "model set")
	seed := flag.Uint64("seed", 1, "experiment seed")
	capW := flag.Int("cap", 1<<18, "per-layer weight cap for profiling")
	trials := flag.Int("trials", 3, "damage probe trials")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: maxnvm [flags] <fig1|fig2|table2|itn|fig5|fig6|fig8|fig9|fig10|fig11|table4|table5|perlayer|ablations|headlines|all>...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	env := exper.NewEnv(*seed)
	env.MaxLayerWeights = *capW
	env.DamageTrials = *trials
	models := strings.Split(*modelsFlag, ",")

	fig6Models := models
	if *model != "" {
		fig6Models = []string{*model}
	}

	var run func(name string)
	run = func(name string) {
		w := os.Stdout
		switch name {
		case "fig1":
			env.Fig1(w)
		case "fig2":
			env.Fig2(w)
		case "table2":
			env.Table2(w, models)
		case "fig5":
			if err := env.Fig5(w, 0); err != nil {
				fmt.Fprintln(os.Stderr, "fig5:", err)
				os.Exit(1)
			}
		case "fig6":
			for _, m := range fig6Models {
				env.Fig6(w, m)
			}
		case "fig8":
			env.Fig8(w, models)
		case "fig9":
			env.Fig9(w)
		case "fig10":
			env.Fig10(w)
		case "fig11":
			env.Fig11(w)
		case "table4":
			env.Table4(w, modelsWithout(models, "LeNet5"))
		case "table5":
			env.Table5(w, modelsWithout(models, "LeNet5"))
		case "headlines":
			env.Headlines(w)
		case "itn":
			if err := env.ITN(w, 0); err != nil {
				fmt.Fprintln(os.Stderr, "itn:", err)
				os.Exit(1)
			}
		case "perlayer":
			env.PerLayer(w, models)
		case "ablations":
			env.Ablations(w)
		case "writepath":
			env.WritePath(w)
		case "rnn":
			env.RNN(w)
		case "retention":
			env.Retention(w, "VGG12")
		case "all":
			for _, x := range []string{"fig1", "fig2", "table2", "itn", "fig5", "fig6", "fig8", "fig9", "fig10", "fig11", "table4", "table5", "perlayer", "writepath", "retention", "rnn", "ablations", "headlines"} {
				run(x)
				fmt.Fprintln(w)
			}
		default:
			fmt.Fprintf(os.Stderr, "maxnvm: unknown experiment %q\n", name)
			os.Exit(2)
		}
	}
	for _, name := range flag.Args() {
		run(name)
		fmt.Println()
	}
}

// modelsWithout filters a name out of the set (Table 4/5 cover the three
// larger models only).
func modelsWithout(models []string, drop string) []string {
	var out []string
	for _, m := range models {
		if m != drop {
			out = append(out, m)
		}
	}
	return out
}
