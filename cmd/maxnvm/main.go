// Command maxnvm regenerates the paper's tables and figures from the
// MaxNVM reproduction.
//
// Usage:
//
//	maxnvm [flags] <experiment>...
//
// Experiments: fig1 fig2 table2 fig5 fig6 fig8 fig9 fig10 fig11 table4
// table5 headlines all
//
// Flags:
//
//	-model      restrict per-model experiments (fig6) to one model
//	-models     comma-separated model set for the multi-model tables
//	-seed       experiment seed (default 1)
//	-cap        per-layer weight cap for profiling (default 262144)
//	-trials     damage probe trials (default 3)
//	-max-trials fig5 campaign trial budget per configuration (default 12)
//	-ci-target  fig5 adaptive early stop CI half-width (0 = full budget)
//	-timeout    per-trial deadline for the fig5 campaign (0 = none)
//	-checkpoint fig5 campaign JSONL checkpoint path
//	-resume     resume the fig5 campaign from -checkpoint
//
// SIGINT cancels the run between experiments (and mid-campaign for
// fig5, flushing completed trials to the checkpoint).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/exper"
)

func main() {
	model := flag.String("model", "", "single model for fig6 (default: all)")
	modelsFlag := flag.String("models", "LeNet5,VGG12,VGG16,ResNet50", "model set")
	seed := flag.Uint64("seed", 1, "experiment seed")
	capW := flag.Int("cap", 1<<18, "per-layer weight cap for profiling")
	trials := flag.Int("trials", 3, "damage probe trials")
	maxTrials := flag.Int("max-trials", 12, "fig5 campaign trial budget per configuration")
	minTrials := flag.Int("min-trials", 4, "fig5 campaign trials before early stopping may trigger")
	ciTarget := flag.Float64("ci-target", 0, "fig5 early stop: 95% CI half-width target on the error delta (0 = full budget)")
	workers := flag.Int("workers", 0, "fig5 campaign worker pool (0 = auto)")
	timeout := flag.Duration("timeout", 0, "fig5 per-trial deadline (0 = none)")
	checkpoint := flag.String("checkpoint", "", "fig5 campaign JSONL checkpoint path")
	resume := flag.Bool("resume", false, "resume the fig5 campaign from -checkpoint")
	progress := flag.Duration("progress", 0, "fig5 campaign progress-line interval on stderr (0 = silent)")
	tel := cliutil.AddFlags()
	flag.Parse()
	tel.Start()
	defer tel.Dump()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: maxnvm [flags] <fig1|fig2|table2|itn|fig5|fig6|fig8|fig9|fig10|fig11|table4|table5|perlayer|ablations|headlines|all>...")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "maxnvm: -resume requires -checkpoint")
		os.Exit(2)
	}

	ctx, stop := cliutil.NotifyContext(context.Background())
	defer stop()

	env := exper.NewEnv(*seed)
	env.MaxLayerWeights = *capW
	env.DamageTrials = *trials
	models := strings.Split(*modelsFlag, ",")

	fig6Models := models
	if *model != "" {
		fig6Models = []string{*model}
	}

	campaignOpt := exper.CampaignOptions{
		MaxTrials:      *maxTrials,
		MinTrials:      *minTrials,
		CITarget:       *ciTarget,
		Workers:        *workers,
		TrialTimeout:   *timeout,
		Checkpoint:     *checkpoint,
		Resume:         *resume,
		Fsync:          tel.SyncPolicy(),
		LockCheckpoint: tel.LockCheckpoint(),
	}
	if *progress > 0 {
		campaignOpt.Progress = os.Stderr
		campaignOpt.ProgressEvery = *progress
	}

	var run func(name string)
	run = func(name string) {
		if err := ctx.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "maxnvm: interrupted")
			tel.Dump() // os.Exit skips the deferred dump
			os.Exit(130)
		}
		w := os.Stdout
		switch name {
		case "fig1":
			env.Fig1(w)
		case "fig2":
			env.Fig2(w)
		case "table2":
			env.Table2(w, models)
		case "fig5":
			if err := env.Fig5Campaign(ctx, w, campaignOpt); err != nil {
				if ctx.Err() != nil {
					fmt.Fprintln(os.Stderr, "fig5: interrupted")
					tel.Dump()
					os.Exit(130)
				}
				fmt.Fprintln(os.Stderr, "fig5:", err)
				os.Exit(1)
			}
		case "fig6":
			for _, m := range fig6Models {
				env.Fig6(w, m)
			}
		case "fig8":
			env.Fig8(w, models)
		case "fig9":
			env.Fig9(w)
		case "fig10":
			env.Fig10(w)
		case "fig11":
			env.Fig11(w)
		case "table4":
			env.Table4(w, modelsWithout(models, "LeNet5"))
		case "table5":
			env.Table5(w, modelsWithout(models, "LeNet5"))
		case "headlines":
			env.Headlines(w)
		case "itn":
			if err := env.ITN(w, 0); err != nil {
				fmt.Fprintln(os.Stderr, "itn:", err)
				os.Exit(1)
			}
		case "perlayer":
			env.PerLayer(w, models)
		case "ablations":
			env.Ablations(w)
		case "writepath":
			env.WritePath(w)
		case "rnn":
			env.RNN(w)
		case "retention":
			env.Retention(w, "VGG12")
		case "all":
			for _, x := range []string{"fig1", "fig2", "table2", "itn", "fig5", "fig6", "fig8", "fig9", "fig10", "fig11", "table4", "table5", "perlayer", "writepath", "retention", "rnn", "ablations", "headlines"} {
				run(x)
				fmt.Fprintln(w)
			}
		default:
			fmt.Fprintf(os.Stderr, "maxnvm: unknown experiment %q\n", name)
			os.Exit(2)
		}
	}
	for _, name := range flag.Args() {
		run(name)
		fmt.Println()
	}
}

// modelsWithout filters a name out of the set (Table 4/5 cover the three
// larger models only).
func modelsWithout(models []string, drop string) []string {
	var out []string
	for _, m := range models {
		if m != drop {
			out = append(out, m)
		}
	}
	return out
}
