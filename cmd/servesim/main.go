// Command servesim is the long-lived batched fault-evaluation server:
// it trains the measured TinyCNN once, then serves what-if fault
// probes — encode, inject, evaluate, lifetime — over HTTP against the
// shared ares replica pool, with bounded admission, request
// coalescing, per-request deadlines, Prometheus telemetry, and
// graceful drain on SIGTERM.
//
// Usage:
//
//	servesim -addr localhost:8344
//	curl -s localhost:8344/v1/evaluate -d '{
//	  "tenant": "acme", "seed": 7,
//	  "config": {"tech":"MLC-CTT","encoding":"csr","default":{"bpc":3}}
//	}'
//	curl -s localhost:8344/metrics
//
// Responses are pure functions of (config, seed): replaying a request
// reproduces its answer bit-for-bit, and identical concurrent requests
// are served by one computation. The admission contract (429 when the
// queue is full, 503 while draining, 504 past the deadline) is
// documented in DESIGN.md §15.
//
// -smoke runs a self-test instead of serving: bind an ephemeral port,
// issue one request per endpoint plus a /metrics scrape, drain, and
// print "smoke ok".
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/exper"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("servesim: ")

	addr := flag.String("addr", "localhost:8344", "listen address")
	seed := flag.Uint64("seed", 1, "training seed for the measured model")
	queue := flag.Int("queue", 64, "admission queue depth (full queue sheds with 429)")
	workers := flag.Int("workers", 0, "goroutines draining the queue into the replica pool (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 10*time.Second, "default per-request deadline (timeout_ms overrides, capped by -max-timeout)")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "upper bound on any requested deadline")
	drain := flag.Duration("drain", 30*time.Second, "graceful drain budget on SIGTERM/SIGINT")
	smoke := flag.Bool("smoke", false, "self-test: serve one request per endpoint on an ephemeral port, then exit")
	tel := cliutil.AddFlags()
	flag.Parse()
	tel.Start()
	defer tel.Dump()

	log.Printf("training measured model (seed %d)...", *seed)
	ev, err := exper.NewEnv(*seed).Measured()
	if err != nil {
		log.Fatal(err)
	}
	srv := serve.New(serve.Options{
		Backend:        serve.NewAresBackend(ev),
		QueueDepth:     *queue,
		Workers:        *workers,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
	})

	if *smoke {
		if err := runSmoke(srv); err != nil {
			log.Fatalf("smoke: %v", err)
		}
		fmt.Println("smoke ok")
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	log.Printf("serving on http://%s (baseline error %.3f)", ln.Addr(), ev.BaselineErr)

	ctx, stop := cliutil.NotifyContext(context.Background())
	defer stop()
	<-ctx.Done()
	stop() // second signal kills immediately

	log.Printf("draining (budget %s)...", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Order matters: first stop admission and let queued + in-flight
	// trials finish (new requests get 503 + Retry-After while the HTTP
	// listener is still up, so load balancers see the drain), then close
	// the listener and idle connections.
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("drain incomplete: %v", err)
		defer os.Exit(1)
	}
	if err := hs.Shutdown(dctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	log.Print("drained")
}

// runSmoke exercises the full surface end to end on a loopback
// listener: every trial endpoint answers 200, /metrics scrapes, the
// drain completes.
func runSmoke(srv *serve.Server) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	const cfg = `"config":{"tech":"MLC-CTT","encoding":"csr","default":{"bpc":3},"overrides":{"rowcount":{"bpc":3,"ecc":true}}}`
	reqs := []struct{ path, body string }{
		{"/v1/encode", `{"tenant":"smoke",` + cfg + `}`},
		{"/v1/inject", `{"tenant":"smoke","seed":7,` + cfg + `}`},
		{"/v1/evaluate", `{"tenant":"smoke","seed":7,` + cfg + `}`},
		{"/v1/lifetime", `{"tenant":"smoke","seed":7,` + cfg + `,"lifetime":{"years":8,"scrub_interval_years":4}}`},
	}
	for _, r := range reqs {
		resp, err := http.Post(base+r.path, "application/json", strings.NewReader(r.body))
		if err != nil {
			return fmt.Errorf("%s: %w", r.path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d: %s", r.path, resp.StatusCode, body)
		}
		log.Printf("%s ok (%d bytes)", r.path, len(body))
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	scrape, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics: status %d", resp.StatusCode)
	}
	for _, want := range []string{"serve_requests{", "ares_replicas_busy 0"} {
		if !strings.Contains(string(scrape), want) {
			return fmt.Errorf("/metrics scrape missing %q", want)
		}
	}
	log.Printf("/metrics ok (%d bytes)", len(scrape))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	return hs.Shutdown(ctx)
}
