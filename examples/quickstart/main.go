// Quickstart: explore MaxNVM storage for one network and print the
// optimal on-chip memory configuration per technology.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	maxnvm "repro"
)

func main() {
	// Prepare VGG12 (CIFAR-10 scale): synthesize weights, magnitude-prune
	// to the paper's 40.9% sparsity, cluster to 4-bit indices, and
	// profile the fault exposure of every stored structure.
	ex, err := maxnvm.Explore("VGG12", maxnvm.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("VGG12 on-chip weight storage, per technology:")
	fmt.Printf("%-14s %-16s %6s %10s %12s %12s\n",
		"technology", "encoding", "BPC", "cells (M)", "area (mm2)", "read (ns)")
	for _, tech := range maxnvm.Technologies() {
		best := ex.Best(tech)
		sum := ex.Summary(tech)
		fmt.Printf("%-14s %-16s %6d %10.2f %12.3f %12.2f\n",
			tech.Name, best.Label(), best.MaxBPC,
			float64(best.TotalCells)/1e6, sum.Array.AreaMM2, sum.Array.ReadLatencyNs)
	}

	// Headline: how much denser is the co-designed MLC configuration than
	// naive single-level-cell storage?
	best := ex.Best(maxnvm.CTT)
	fmt.Printf("\nMLC-CTT needs %.1fx fewer cells than dense SLC storage.\n",
		ex.AreaBenefit(best))

	// System view: drop the weights into NVDLA and compare against the
	// DRAM baseline.
	onchip := ex.System(maxnvm.NVDLA64, best)
	baseline := ex.Baseline(maxnvm.NVDLA64, best)
	fmt.Printf("\nNVDLA-64 inference (VGG12):\n")
	fmt.Printf("  DRAM baseline: %7.1f uJ/inference, %6.1f mW, %7.1f FPS\n",
		baseline.EnergyUJ, baseline.AvgPowerMW, baseline.FPS)
	fmt.Printf("  on-chip CTT:   %7.1f uJ/inference, %6.1f mW, %7.1f FPS\n",
		onchip.EnergyUJ, onchip.AvgPowerMW, onchip.FPS)
	fmt.Printf("  -> %.1fx lower energy, %.1fx lower power\n",
		baseline.EnergyUJ/onchip.EnergyUJ, baseline.AvgPowerMW/onchip.AvgPowerMW)
}
