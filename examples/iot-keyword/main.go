// Deeply-embedded scenario with *measured* accuracy: train a small
// convnet (an always-on keyword/gesture-detector stand-in) on a synthetic
// task, prune + cluster it, store the encoded weights in fault-prone
// MLC-CTT, and verify with real fault-injected inference that the chosen
// configuration keeps classification error within the iso-training-noise
// bound — while an unprotected configuration visibly fails.
//
//	go run ./examples/iot-keyword
package main

import (
	"fmt"
	"log"

	"repro/internal/ares"
	"repro/internal/dnn"
	"repro/internal/envm"
	"repro/internal/sparse"
	"repro/internal/train"
)

func main() {
	fmt.Println("Training TinyCNN on the synthetic 10-class task...")
	trainDS := train.Synthesize(train.SynthConfig{N: 800, Seed: 10, ProtoSeed: 77})
	testDS := train.Synthesize(train.SynthConfig{N: 300, Seed: 11, ProtoSeed: 77})
	m := dnn.TinyCNN()
	m.InitWeights(42)
	if _, err := train.Train(m, trainDS, train.Config{Epochs: 8, Seed: 1}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  trained accuracy: %.1f%%\n", 100*train.Accuracy(m, testDS))

	// Prune + cluster (the evaluator applies the optimized weights and
	// measures the new baseline).
	ev, err := ares.NewMeasuredEvaluator(m, testDS, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  after pruning (60%%) + 4-bit clustering: %.1f%% accuracy\n", 100*(1-ev.BaselineErr))

	const trials = 20
	show := func(label string, cfg ares.Config) ares.MeasuredResult {
		res := ev.EvalConfig(cfg, trials, 99)
		fmt.Printf("  %-44s mean +%.4f  worst +%.4f\n", label, res.MeanDeltaErr, res.MaxDeltaErr)
		return res
	}

	fmt.Printf("\nMeasured error increase over %d fault maps (MLC-CTT):\n", trials)
	bad := show("BitMask, everything at MLC3, unprotected:",
		ares.Config{Tech: envm.CTT, Encoding: sparse.KindBitMask,
			Default: ares.StreamPolicy{BPC: 3}})
	good := show("BitM+IdxSync, mask at SLC, values at MLC3:",
		ares.Config{Tech: envm.CTT, Encoding: sparse.KindBitMaskIdxSync,
			Default: ares.StreamPolicy{BPC: 3},
			Overrides: map[string]ares.StreamPolicy{
				"bitmask": {BPC: 1},
				"idxsync": {BPC: 1},
			}})

	bound := m.Meta.ErrorBound
	fmt.Printf("\niso-training-noise bound: %.4f\n", bound)
	if good.MeanDeltaErr <= bound && bad.MeanDeltaErr > bound {
		fmt.Println("-> co-designed configuration is safe; naive MLC3 storage is not.")
	} else {
		fmt.Println("-> unexpected outcome; inspect fault rates and bounds.")
	}

	// Storage bill for the safe configuration.
	var cells, bits int64
	for _, cl := range ev.Clustered() {
		enc := sparse.Must(sparse.Encode(sparse.KindBitMaskIdxSync, cl.Indices, cl.Rows, cl.Cols, cl.IndexBits))
		costs := ares.Cost(enc, ares.Config{Tech: envm.CTT, Encoding: sparse.KindBitMaskIdxSync,
			Default: ares.StreamPolicy{BPC: 3},
			Overrides: map[string]ares.StreamPolicy{
				"bitmask": {BPC: 1}, "idxsync": {BPC: 1},
			}})
		cells += ares.TotalCells(costs)
		bits += ares.TotalBits(costs)
	}
	raw := int64(m.WeightCount()) * 16
	fmt.Printf("\nStorage: %d cells (%.2f KB stored) vs %.2f KB raw 16-bit -> %.1fx denser.\n",
		cells, float64(bits)/8e3, float64(raw)/8e3, float64(raw)/float64(bits))
	fmt.Printf("Write time (full model): %.3fs on CTT — acceptable for a rarely-updated device.\n",
		envm.CTT.WriteTimeSeconds(cells, 3))
}
