// On-chip ResNet50 inference (paper Section 5): fit all weights of an
// ImageNet-scale network into on-chip MLC eNVM, eliminate DRAM, and
// compare energy/power/FPS across the four evaluated memory proposals —
// including the non-volatility study of Section 5.3 (energy per
// inference versus frame rate).
//
//	go run ./examples/onchip-resnet
package main

import (
	"fmt"
	"log"

	maxnvm "repro"
	"repro/internal/nvdla"
	"repro/internal/nvsim"
)

func main() {
	fmt.Println("Exploring ResNet50 storage (this prunes, clusters, and profiles 54 layers)...")
	ex, err := maxnvm.Explore("ResNet50", maxnvm.Options{
		Seed:            1,
		MaxLayerWeights: 1 << 17, // subsample large layers for speed
		DamageTrials:    3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nSelf-contained inference accelerator (Figure 7b): all weights on-chip")
	fmt.Printf("%-14s %-16s %10s %12s %12s %10s\n",
		"technology", "encoding", "MB", "area mm2", "energy uJ", "FPS")
	type point struct {
		tech maxnvm.Tech
		rep  maxnvm.SystemReport
	}
	var best *point
	for _, tech := range maxnvm.Technologies() {
		sum := ex.Summary(tech)
		rep := ex.System(maxnvm.NVDLA1024, sum.Candidate)
		fmt.Printf("%-14s %-16s %10.1f %12.2f %12.1f %10.1f\n",
			tech.Name, sum.Candidate.Label(), sum.CapacityMB,
			rep.TotalAreaMM2, rep.EnergyUJ, rep.FPS)
		if best == nil || rep.EnergyUJ < best.rep.EnergyUJ {
			best = &point{tech: tech, rep: rep}
		}
	}
	fmt.Printf("\nLowest energy per inference: %s (%.1f uJ) — the paper's CTT finding.\n",
		best.tech.Name, best.rep.EnergyUJ)

	// Section 5.3: how the picture changes with frame rate.
	cttSum := ex.Summary(maxnvm.CTT)
	cttMem := nvdla.ENVMWeights{R: cttSum.Array}
	work := nvdla.Workload(ex.Model(), ex.Explorer().EncodedLayerBits(cttSum.Candidate))
	cttRep := nvdla.Run(nvdla.NVDLA1024, work, cttMem)

	dramMem := nvdla.DRAMWeights{D: nvdla.NVDLA1024.DRAM}
	baseWork := nvdla.Workload(ex.Model(), nil)
	dramRep := nvdla.Run(nvdla.NVDLA1024, baseWork, dramMem)
	rawBits := int64(ex.Model().WeightCount()) * 16

	fmt.Println("\nAverage energy per inference vs frame rate (Figure 10, uJ):")
	fmt.Printf("%6s %16s %14s %12s\n", "FPS", "DRAM always-on", "DRAM wake-up", "CTT nv-sleep")
	for _, fps := range []float64{5, 22, 30, 90} {
		ao := nvdla.EnergyAtFPS(nvdla.NVDLA1024, dramRep, dramMem, rawBits, fps, nvdla.AlwaysOn)
		wu := nvdla.EnergyAtFPS(nvdla.NVDLA1024, dramRep, dramMem, rawBits, fps, nvdla.WakeUp)
		nv := nvdla.EnergyAtFPS(nvdla.NVDLA1024, cttRep, cttMem, rawBits, fps, nvdla.NonVolatileSleep)
		fmt.Printf("%6.0f %16.1f %14.1f %12.1f\n", fps, ao, wu, nv)
	}

	// And the write-latency caveat (Table 5): what updating weights costs.
	fmt.Println("\nWeight update cost (Table 5):")
	for _, tech := range maxnvm.Technologies() {
		sum := ex.Explorer().Summarize(tech, nvsim.OptReadEDP)
		fmt.Printf("  %-14s %10.4g s\n", tech.Name, sum.WriteTimeSec)
	}
	fmt.Println("\nCTT trades minutes-long reprogramming for the densest, lowest-energy reads;")
	fmt.Println("RRAM rewrites in milliseconds at ~20% higher energy per inference.")
}
