// Hybrid memory study (paper Section 6): a fixed 1 mm² on-chip budget is
// split between SRAM (intermediate values) and MLC eNVM (weights), with
// DRAM serving the overflow. The sweep reproduces Figure 11's shape: an
// energy optimum near the middle of the range and a sharp performance
// collapse once SRAM can no longer hold the activation working set.
//
//	go run ./examples/hybrid-vgg16
package main

import (
	"fmt"
	"log"

	maxnvm "repro"
	"repro/internal/envm"
	"repro/internal/nvdla"
)

func main() {
	fmt.Println("Exploring VGG16 storage (16 layers, ImageNet scale)...")
	ex, err := maxnvm.Explore("VGG16", maxnvm.Options{
		Seed:            1,
		MaxLayerWeights: 1 << 17,
		DamageTrials:    3,
	})
	if err != nil {
		log.Fatal(err)
	}
	best := ex.Best(maxnvm.CTT)
	work := nvdla.Workload(ex.Model(), ex.Explorer().EncodedLayerBits(best))
	acc := nvdla.NVDLA1024

	fmt.Printf("\nVGG16 encoded weights: %.1f MB (%s, max %d bits/cell)\n",
		float64(best.TotalBits())/8e6, best.Label(), best.MaxBPC)
	fmt.Println("\n1 mm² on-chip budget: SRAM vs MLC-CTT split (Figure 11):")
	fmt.Printf("%8s %10s %12s %14s %10s %12s\n",
		"%eNVM", "SRAM KB", "eNVM Mbit", "weights onchip", "rel FPS", "energy uJ")

	base := nvdla.RunHybrid(acc, work, nvdla.PlanHybrid(acc, work, envm.CTT, best.MaxBPC, 1.0, 0))
	type sweepPoint struct {
		frac   float64
		energy float64
	}
	bestPt := sweepPoint{0, base.EnergyUJ}
	for _, frac := range []float64{0, 0.1, 0.2, 0.3, 0.45, 0.6, 0.75, 0.85, 0.95} {
		plan := nvdla.PlanHybrid(acc, work, envm.CTT, best.MaxBPC, 1.0, frac)
		rep := nvdla.RunHybrid(acc, work, plan)
		var placed int64
		for i, f := range plan.InENVM {
			placed += int64(f * float64(work[i].WeightBits))
		}
		var total int64
		for _, lw := range work {
			total += lw.WeightBits
		}
		fmt.Printf("%7.0f%% %10d %12.1f %13.1f%% %10.3f %12.1f\n",
			frac*100, plan.SRAMBytes>>10, float64(plan.ENVMCapBits)/1e6,
			100*float64(placed)/float64(total), rep.FPS/base.FPS, rep.EnergyUJ)
		if rep.EnergyUJ < bestPt.energy {
			bestPt = sweepPoint{frac, rep.EnergyUJ}
		}
	}
	fmt.Printf("\nLowest energy per inference at %.0f%% eNVM (paper: ~45%%).\n", bestPt.frac*100)
	fmt.Println("eNVM and DRAM hold mutually exclusive weight sets; the eNVM is not a cache.")
}
