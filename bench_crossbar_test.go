package maxnvm

// Tracked crossbar compute-in-memory benchmarks (make bench-crossbar):
// trial throughput through the analog route — per-tile accumulation
// with per-column ADC quantization — against the digital dense route
// running the same programmed weights, plus the per-epoch cost of the
// online detect/remap/degrade loop. Results land in BENCH_crossbar.json
// via cmd/benchjson.
//
// Rows to compare:
//
//   - CrossbarTrialThroughput vs CrossbarTrialThroughputDigital: the
//     ADC-quantized crossbar kernels vs the dense digital kernels on
//     identical effective weights (ADCBits=0 routes the same trial
//     through the dense path). The gap is the pure cost of modeling
//     column-wise ADC quantization.
//   - CrossbarTrialThroughput vs CrossbarTrialThroughputSerial: the
//     replica-pool measurement vs the mutex-serialized oracle.
//   - CrossbarScrubEpoch vs CrossbarProgram: one online tolerance epoch
//     (detect -> remap -> degrade) vs programming alone; the difference
//     is the scrub overhead per epoch (remaps/op makes the repair work
//     explicit).

import (
	"testing"

	"repro/internal/ares"
	"repro/internal/crossbar"
	"repro/internal/envm"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// benchXbarConfig exercises the full analog path: programming variation
// on every device (so no trial takes the fast path), sparse column
// faults, and an 8-bit ADC.
func benchXbarConfig(adcBits int) ares.Config {
	return ares.Config{Tech: envm.CTT, Crossbar: &crossbar.Config{
		Rows: 64, Cols: 32, VarSigma: 0.02, StuckColRate: 5e-3, ADCBits: adcBits,
	}}
}

// BenchmarkCrossbarTrialThroughput is the headline analog row: every
// trial programs the arrays, then measures through the crossbar kernels
// (tile accumulation + 8-bit column ADCs) on a pooled replica.
func BenchmarkCrossbarTrialThroughput(b *testing.B) {
	ev := benchMeasured(b)
	benchTrials(b, benchXbarConfig(8), ev.EvalTrial)
}

// BenchmarkCrossbarTrialThroughputDigital runs the identical fault
// workload with the ADC disabled: the same effective weights overlay
// the dense digital kernels, isolating the ADC-modeling cost.
func BenchmarkCrossbarTrialThroughputDigital(b *testing.B) {
	ev := benchMeasured(b)
	benchTrials(b, benchXbarConfig(0), ev.EvalTrial)
}

// BenchmarkCrossbarTrialThroughputSerial is the mutex-serialized oracle
// for the analog row.
func BenchmarkCrossbarTrialThroughputSerial(b *testing.B) {
	ev := benchMeasured(b)
	benchTrials(b, benchXbarConfig(8), ev.EvalTrialSerial)
}

// benchXbarLayer maps one FC-sized weight matrix for the scrub
// microbenchmarks (512x256: 8 row tiles x 8 column tiles of 64x32).
func benchXbarLayer(b *testing.B, cfg crossbar.Config) (*crossbar.Layer, *crossbar.Trial) {
	b.Helper()
	w := tensor.NewMatrix(512, 256)
	s := uint64(9)
	for i := range w.Data {
		s = s*6364136223846793005 + 1442695040888963407
		w.Data[i] = float32(int32(s>>33)) / float32(1<<31)
	}
	ly, err := crossbar.Map(w, cfg, envm.CTT)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := ly.NewTrial(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return ly, tr
}

// BenchmarkCrossbarProgram: programming one 512x256 layer (variation +
// stuck-at sampling, no online loop) — the baseline for the scrub rows.
func BenchmarkCrossbarProgram(b *testing.B) {
	cfg := crossbar.Config{Rows: 64, Cols: 32, VarSigma: 0.02, StuckColRate: 5e-3}
	_, tr := benchXbarLayer(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Program(stats.NewSource(uint64(i) + 1))
	}
}

// BenchmarkCrossbarScrubEpoch: one full online tolerance epoch — probe
// every column segment, remap flagged columns to spares, zero the
// unmappable — on a freshly programmed layer. Subtract the Program row
// for the pure scrub overhead.
func BenchmarkCrossbarScrubEpoch(b *testing.B) {
	cfg := crossbar.Config{Rows: 64, Cols: 32, VarSigma: 0.02, StuckColRate: 5e-3,
		SpareCols: 4, DetectSigma: 4}
	_, tr := benchXbarLayer(b, cfg)
	remaps := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := stats.NewSource(uint64(i) + 1)
		tr.Program(src)
		tr.Online(src.Fork(4))
		remaps += tr.Stats.Remapped
	}
	b.StopTimer()
	b.ReportMetric(float64(remaps)/float64(b.N), "remaps/op")
}
