# Verify tiers for the MaxNVM reproduction.
#
#   make check   - tier 1: build + full test suite (the seed contract)
#   make race    - tier 2: go vet + race detector on a fast test pass
#   make fuzz    - short fuzz pass over the sparse decode targets
#   make bench   - full benchmark harness (regenerates every figure)
#   make all     - check + race

GO      ?= go
FUZZTIME ?= 10s

.PHONY: all check build test race vet fuzz bench clean

all: check race

check: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race tier runs -short so the exploration-scale benchmarks and the
# slowest campaigns stay out of the hot CI path; the campaign engine's
# concurrency tests always run under it.
race: vet
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/campaign/... ./internal/stats/...

fuzz:
	$(GO) test -fuzz=FuzzCSRDecode -fuzztime=$(FUZZTIME) ./internal/sparse/
	$(GO) test -fuzz=FuzzBitMaskDecode -fuzztime=$(FUZZTIME) ./internal/sparse/

bench:
	$(GO) test -bench=. -benchmem .

clean:
	$(GO) clean -testcache
