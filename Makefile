# Verify tiers for the MaxNVM reproduction.
#
#   make check   - tier 1: build + full test suite + vet + race pass on
#                  the concurrency-heavy packages (the seed contract)
#                  + the servesim end-to-end smoke
#   make race    - tier 2: go vet + race detector on a fast test pass
#   make cover   - per-package coverage floors on the core packages
#   make fleet-crash - the fleet fault matrix: lease races, zombie
#                  fencing, crash-between-claim-and-record, and the
#                  kill -9 subprocess recovery test, under -race
#   make chaos   - the supervision soak: real subprocess workers under a
#                  seed-pinned SIGKILL/SIGSTOP schedule plus a poison
#                  shard, proving quarantine + bit-identical recovery
#   make fuzz    - short fuzz pass over the sparse decode and
#                  checkpoint-loader targets
#   make bench   - full benchmark harness (regenerates every figure)
#   make bench-inference - tracked inference/campaign throughput baseline,
#                  written to BENCH_inference.json. To compare two
#                  revisions benchstat-style, save each run's stdout
#                  (e.g. `make bench-inference | tee old.txt`) and diff
#                  the ns/op, allocs/op, and trials/s columns; the JSON
#                  diff in review serves the same purpose.
#   make all     - check + race

GO      ?= go
FUZZTIME ?= 10s

# Coverage floor (percent) enforced per package by `make cover` — per
# package rather than aggregate so an untested package cannot hide
# behind a well-tested one.
COVER_FLOOR ?= 70
COVER_PKGS   = internal/campaign internal/envm internal/sparse internal/ecc internal/telemetry internal/cliutil internal/durable internal/errfs internal/fleet internal/serve internal/supervise internal/chaos internal/ares internal/mitigate internal/tensor internal/crossbar

.PHONY: all check build test race race-fast vet cover fuzz fleet-crash chaos bench bench-inference bench-fleet bench-serve bench-crossbar serve-smoke clean

all: check race

check: build test vet race-fast serve-smoke chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race tier runs -short so the exploration-scale benchmarks and the
# slowest campaigns stay out of the hot CI path; the campaign engine's
# concurrency tests always run under it.
race: vet
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/campaign/... ./internal/stats/...

# The telemetry registry, the instrumented campaign engine, the replica
# pool, the fleet lease protocol, and the parallel tensor kernels are
# the most concurrency-sensitive pieces; they get a dedicated race pass
# in tier 1 so a data race cannot land even when the full race tier is
# skipped.
race-fast:
	$(GO) test -race ./internal/campaign/... ./internal/telemetry/... ./internal/ares/... ./internal/sparse/... ./internal/tensor/... ./internal/crossbar/... ./internal/fleet/... ./internal/serve/... ./internal/supervise/... ./internal/chaos/...

# The server's own end-to-end smoke: train, serve every endpoint on an
# ephemeral port, scrape /metrics, drain.
serve-smoke:
	$(GO) run ./cmd/servesim -smoke

# The fleet fault matrix, repeated to shake out schedule-dependent
# flakes: claim races, expiry steals with zombie fencing, simulated
# crashes between claim and first record, double merges, and the real
# kill -9 subprocess recovery test.
fleet-crash:
	$(GO) test -race -count=3 ./internal/fleet/

# The supervision soak: the chaos injector SIGKILLs and SIGSTOPs real
# campaignd-style subprocess workers on a seed-pinned schedule while a
# poison shard crashes every claimant, and the supervisor must converge
# — poison quarantined, healthy shards bit-identical to a clean run,
# zero stuck leases. Seed-pinned and bounded (~60s worst case), so it
# is deterministic enough to sit in tier 1.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Supervis|Quarantin|Poison' ./internal/supervise/ ./internal/chaos/ ./internal/fleet/

cover:
	@fail=0; \
	for pkg in $(COVER_PKGS); do \
		profile=$$(mktemp); \
		$(GO) test -coverprofile=$$profile ./$$pkg/ >/dev/null || { rm -f $$profile; exit 1; }; \
		pct=$$($(GO) tool cover -func=$$profile | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
		rm -f $$profile; \
		if awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(p+0 >= f+0) }'; then \
			printf "ok   %-22s %6s%%  (floor $(COVER_FLOOR)%%)\n" $$pkg $$pct; \
		else \
			printf "FAIL %-22s %6s%%  below the $(COVER_FLOOR)%% floor\n" $$pkg $$pct; fail=1; \
		fi; \
	done; \
	exit $$fail

fuzz:
	$(GO) test -fuzz=FuzzCSRDecode -fuzztime=$(FUZZTIME) ./internal/sparse/
	$(GO) test -fuzz=FuzzBitMaskDecode -fuzztime=$(FUZZTIME) ./internal/sparse/
	$(GO) test -fuzz=FuzzDecode24 -fuzztime=$(FUZZTIME) ./internal/sparse/
	$(GO) test -fuzz=FuzzECCCorrect -fuzztime=$(FUZZTIME) ./internal/ecc/
	$(GO) test -fuzz=FuzzLoadCheckpoint -fuzztime=$(FUZZTIME) ./internal/campaign/
	$(GO) test -fuzz=FuzzDecodeRequest -fuzztime=$(FUZZTIME) ./internal/serve/
	$(GO) test -fuzz=FuzzParseLease -fuzztime=$(FUZZTIME) ./internal/fleet/
	$(GO) test -fuzz=FuzzParseHeartbeat -fuzztime=$(FUZZTIME) ./internal/fleet/
	$(GO) test -fuzz=FuzzCrossbarConfig -fuzztime=$(FUZZTIME) ./internal/crossbar/

bench:
	$(GO) test -bench=. -benchmem .

# The tracked baseline: campaign trial throughput (replica pool vs the
# serialized reference path) and the steady-state forward pass, teed
# through cmd/benchjson into BENCH_inference.json so the numbers land in
# review diffs.
bench-inference:
	$(GO) test -run '^$$' -bench 'TrialThroughput|ForwardAllocFree' -benchmem -benchtime=2s . \
		| $(GO) run ./cmd/benchjson -out BENCH_inference.json

# The tracked fleet baseline: end-to-end fleet runs at 1/2/4 workers vs
# the same campaign without the fleet, plus the raw lease-cycle cost,
# written to BENCH_fleet.json. On a single-core container the worker
# counts share one core and trials/s stays flat; the tracked signal is
# fleet overhead vs the baseline row (see internal/fleet/bench_test.go).
bench-fleet:
	$(GO) test -run '^$$' -bench 'Fleet' -benchmem -benchtime=2s ./internal/fleet/ \
		| $(GO) run ./cmd/benchjson -out BENCH_fleet.json

# The tracked crossbar baseline: compute-in-memory trial throughput
# (ADC-quantized analog kernels vs the digital dense route on identical
# effective weights, replica pool vs serialized oracle) plus the
# per-epoch cost of the online detect/remap/degrade loop, written to
# BENCH_crossbar.json (see bench_crossbar_test.go for the row-by-row
# comparisons).
bench-crossbar:
	$(GO) test -run '^$$' -bench 'Crossbar' -benchmem -benchtime=2s . \
		| $(GO) run ./cmd/benchjson -out BENCH_crossbar.json

# The tracked server baseline: a closed-loop client fleet against the
# batched evaluation server (real replica pool behind it), written to
# BENCH_serve.json. Tracked signals: req/s (throughput) and p99-ms
# (tail latency under the coalescing + admission path).
bench-serve:
	$(GO) test -run '^$$' -bench 'ServeLoad' -benchmem -benchtime=2s ./internal/serve/ \
		| $(GO) run ./cmd/benchjson -out BENCH_serve.json

clean:
	$(GO) clean -testcache
