package maxnvm

// Tracked inference-engine benchmarks (make bench-inference): campaign
// trial throughput through the replica pool vs the legacy serialized
// path, and the allocation profile of the steady-state forward pass.
// Results are written to BENCH_inference.json so speedups and
// regressions are visible in review diffs. Compare runs benchstat-style:
// save the old and new `go test -bench` output and diff the ns/op,
// allocs/op, and trials/s columns.
//
// Two workloads are tracked:
//
//   - CampaignTrialThroughput*: the paper's Figure 5 row-counter config
//     (CTT MLC3 on the CSR rowcount stream). The stream is a few hundred
//     cells, so most fault maps decode clean and take the zero-mismatch
//     fast path — the realistic campaign mix.
//   - CorruptedTrialThroughput*: the CSR value stream at MLC3, where
//     essentially every trial corrupts weights and pays full inference —
//     the worst case, isolating replica-vs-lock measurement cost.
//
// The reported fasthit/op metric makes the fast-path fraction explicit
// in the JSON so the two workloads cannot be confused.

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/ares"
	"repro/internal/dnn"
	"repro/internal/envm"
	"repro/internal/sparse"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/train"
)

var (
	benchMeasuredOnce sync.Once
	benchMeasuredEv   *ares.MeasuredEvaluator
	benchMeasuredErr  error
)

// benchMeasured trains the TinyCNN fixture once per benchmark binary and
// wraps it in a MeasuredEvaluator (same recipe as the ares test suite).
func benchMeasured(b *testing.B) *ares.MeasuredEvaluator {
	b.Helper()
	benchMeasuredOnce.Do(func() {
		trainDS := train.Synthesize(train.SynthConfig{N: 600, Seed: 10, ProtoSeed: 77})
		testDS := train.Synthesize(train.SynthConfig{N: 200, Seed: 11, ProtoSeed: 77})
		m := dnn.TinyCNN()
		m.InitWeights(42)
		if _, benchMeasuredErr = train.Train(m, trainDS, train.Config{Epochs: 6, Seed: 1}); benchMeasuredErr != nil {
			return
		}
		benchMeasuredEv, benchMeasuredErr = ares.NewMeasuredEvaluator(m, testDS, 5)
	})
	if benchMeasuredErr != nil {
		b.Fatal(benchMeasuredErr)
	}
	return benchMeasuredEv
}

func benchFig5Config() ares.Config {
	return ares.IsolateStream(ares.Config{Tech: envm.CTT, Encoding: sparse.KindCSR},
		"rowcount", ares.StreamPolicy{BPC: 3})
}

func benchDenseFaultConfig() ares.Config {
	return ares.IsolateStream(ares.Config{Tech: envm.CTT, Encoding: sparse.KindCSR},
		"values", ares.StreamPolicy{BPC: 3})
}

// trial is one EvalTrial-shaped call under benchmark.
type trialFunc func(ctx context.Context, cfg ares.Config, seed uint64) (float64, ares.TrialStats, error)

// benchTrials drives fn from GOMAXPROCS goroutines — the campaign
// engine's access pattern — reporting trials/s and the fast-path hit
// fraction.
func benchTrials(b *testing.B, cfg ares.Config, fn trialFunc) {
	ctx := context.Background()
	// Warm the encoding cache (and replica pool) outside the timer.
	if _, _, err := fn(ctx, cfg, 1); err != nil {
		b.Fatal(err)
	}
	fastHits := telemetry.Default().Counter("ares.fastpath.hits")
	hits0 := fastHits.Value()
	var seed atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := fn(ctx, cfg, seed.Add(1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "trials/s")
	}
	b.ReportMetric(float64(fastHits.Value()-hits0)/float64(b.N), "fasthit/op")
}

// BenchmarkCampaignTrialThroughput is the headline: Figure 5 campaign
// trials through the replica pool (parallel measurement + fast path).
func BenchmarkCampaignTrialThroughput(b *testing.B) {
	ev := benchMeasured(b)
	benchTrials(b, benchFig5Config(), ev.EvalTrial)
}

// BenchmarkCampaignTrialThroughputSerial is the pre-replica baseline:
// the same concurrent callers, but every measurement funnels through the
// mutex-serialized shared model and allocates a fresh forward pass.
func BenchmarkCampaignTrialThroughputSerial(b *testing.B) {
	ev := benchMeasured(b)
	benchTrials(b, benchFig5Config(), ev.EvalTrialSerial)
}

// BenchmarkCorruptedTrialThroughput is the worst case: every trial
// corrupts weights, so the fast path never fires and each trial pays a
// full (allocation-free, replica-local) inference pass.
func BenchmarkCorruptedTrialThroughput(b *testing.B) {
	ev := benchMeasured(b)
	benchTrials(b, benchDenseFaultConfig(), ev.EvalTrial)
}

// BenchmarkCorruptedTrialThroughputSerial is the locked baseline for the
// worst case.
func BenchmarkCorruptedTrialThroughputSerial(b *testing.B) {
	ev := benchMeasured(b)
	benchTrials(b, benchDenseFaultConfig(), ev.EvalTrialSerial)
}

func bench24FaultConfig() ares.Config {
	return ares.IsolateStream(ares.Config{Tech: envm.CTT, Encoding: sparse.Kind24},
		"values", ares.StreamPolicy{BPC: 3})
}

// BenchmarkCorruptedTrialThroughput24Direct is the compute-direct 2:4
// worst case: every trial corrupts the value stream, canonicalizes the
// compact form, and runs inference through the tensor.Sparse24 kernels —
// no dense weight matrix is ever materialized. Compare against
// CorruptedTrialThroughput (CSR decode-to-dense, same replica pool) and
// the 24Oracle row below for the decode-elimination speedup.
func BenchmarkCorruptedTrialThroughput24Direct(b *testing.B) {
	ev := benchMeasured(b)
	benchTrials(b, bench24FaultConfig(), ev.EvalTrial)
}

// BenchmarkCorruptedTrialThroughput24Oracle is the decode-to-dense
// reference route for the same 2:4 workload (EvalTrialSerial): corrupted
// streams decode to a dense index matrix and run the dense kernels.
func BenchmarkCorruptedTrialThroughput24Oracle(b *testing.B) {
	ev := benchMeasured(b)
	benchTrials(b, bench24FaultConfig(), ev.EvalTrialSerial)
}

// BenchmarkForwardAllocFree measures the steady-state forward pass in
// the replica configuration (Workers=1, reused Forwarder). Run with
// -benchmem: the acceptance criterion is 0 allocs/op.
func BenchmarkForwardAllocFree(b *testing.B) {
	ds := train.Synthesize(train.SynthConfig{N: 100, Seed: 1})
	m := dnn.TinyCNN()
	m.InitWeights(1)
	f := dnn.NewForwarder(m)
	f.Workers = 1
	f.Forward(ds.Images) // materialize buffers
	if n := testing.AllocsPerRun(10, func() { f.Forward(ds.Images) }); n != 0 {
		b.Fatalf("steady-state forward pass allocates %v allocs/op, want 0", n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Forward(ds.Images)
	}
}

// BenchmarkForwardAllocFree24 is the same steady-state forward pass with
// every weight layer routed through the compute-direct 2:4 kernels
// (weights projected onto the 2:4 pattern). Same acceptance criterion:
// 0 allocs/op. The ns/op delta vs BenchmarkForwardAllocFree is the raw
// kernel speedup from skipping half the MACs.
func BenchmarkForwardAllocFree24(b *testing.B) {
	ds := train.Synthesize(train.SynthConfig{N: 100, Seed: 1})
	m := dnn.TinyCNN()
	m.InitWeights(1)
	for _, l := range m.Layers {
		if !l.HasWeights() {
			continue
		}
		w := l.Weights
		s := tensor.NewSparse24(w.Rows, w.Cols)
		gpr := s.GroupsPerRow
		for r := 0; r < w.Rows; r++ {
			for g := 0; g < gpr; g++ {
				lim := w.Cols - g*4
				if lim > 4 {
					lim = 4
				}
				// Keep the two largest magnitudes per group (leftmost ties).
				best, second := -1, -1
				abs := func(p int) float32 {
					v := w.Data[r*w.Cols+g*4+p]
					if v < 0 {
						v = -v
					}
					return v
				}
				for p := 0; p < lim; p++ {
					switch {
					case best < 0 || abs(p) > abs(best):
						best, second = p, best
					case second < 0 || abs(p) > abs(second):
						second = p
					}
				}
				if second >= 0 && second < best {
					best, second = second, best
				}
				e := (r*gpr + g) * 2
				k := 0
				for _, p := range [2]int{best, second} {
					if p >= 0 && abs(p) != 0 {
						s.Val[e+k], s.Pos[e+k] = w.Data[r*w.Cols+g*4+p], uint8(p)
						k++
					}
				}
			}
		}
		l.Weights24 = s
	}
	f := dnn.NewForwarder(m)
	f.Workers = 1
	f.Forward(ds.Images)
	if n := testing.AllocsPerRun(10, func() { f.Forward(ds.Images) }); n != 0 {
		b.Fatalf("2:4 steady-state forward pass allocates %v allocs/op, want 0", n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Forward(ds.Images)
	}
}
