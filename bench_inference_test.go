package maxnvm

// Tracked inference-engine benchmarks (make bench-inference): campaign
// trial throughput through the replica pool vs the legacy serialized
// path, and the allocation profile of the steady-state forward pass.
// Results are written to BENCH_inference.json so speedups and
// regressions are visible in review diffs. Compare runs benchstat-style:
// save the old and new `go test -bench` output and diff the ns/op,
// allocs/op, and trials/s columns.
//
// Two workloads are tracked:
//
//   - CampaignTrialThroughput*: the paper's Figure 5 row-counter config
//     (CTT MLC3 on the CSR rowcount stream). The stream is a few hundred
//     cells, so most fault maps decode clean and take the zero-mismatch
//     fast path — the realistic campaign mix.
//   - CorruptedTrialThroughput*: the CSR value stream at MLC3, where
//     essentially every trial corrupts weights and pays full inference —
//     the worst case, isolating replica-vs-lock measurement cost.
//
// The reported fasthit/op metric makes the fast-path fraction explicit
// in the JSON so the two workloads cannot be confused.

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/ares"
	"repro/internal/dnn"
	"repro/internal/envm"
	"repro/internal/sparse"
	"repro/internal/telemetry"
	"repro/internal/train"
)

var (
	benchMeasuredOnce sync.Once
	benchMeasuredEv   *ares.MeasuredEvaluator
	benchMeasuredErr  error
)

// benchMeasured trains the TinyCNN fixture once per benchmark binary and
// wraps it in a MeasuredEvaluator (same recipe as the ares test suite).
func benchMeasured(b *testing.B) *ares.MeasuredEvaluator {
	b.Helper()
	benchMeasuredOnce.Do(func() {
		trainDS := train.Synthesize(train.SynthConfig{N: 600, Seed: 10, ProtoSeed: 77})
		testDS := train.Synthesize(train.SynthConfig{N: 200, Seed: 11, ProtoSeed: 77})
		m := dnn.TinyCNN()
		m.InitWeights(42)
		if _, benchMeasuredErr = train.Train(m, trainDS, train.Config{Epochs: 6, Seed: 1}); benchMeasuredErr != nil {
			return
		}
		benchMeasuredEv, benchMeasuredErr = ares.NewMeasuredEvaluator(m, testDS, 5)
	})
	if benchMeasuredErr != nil {
		b.Fatal(benchMeasuredErr)
	}
	return benchMeasuredEv
}

func benchFig5Config() ares.Config {
	return ares.IsolateStream(ares.Config{Tech: envm.CTT, Encoding: sparse.KindCSR},
		"rowcount", ares.StreamPolicy{BPC: 3})
}

func benchDenseFaultConfig() ares.Config {
	return ares.IsolateStream(ares.Config{Tech: envm.CTT, Encoding: sparse.KindCSR},
		"values", ares.StreamPolicy{BPC: 3})
}

// trial is one EvalTrial-shaped call under benchmark.
type trialFunc func(ctx context.Context, cfg ares.Config, seed uint64) (float64, ares.TrialStats, error)

// benchTrials drives fn from GOMAXPROCS goroutines — the campaign
// engine's access pattern — reporting trials/s and the fast-path hit
// fraction.
func benchTrials(b *testing.B, cfg ares.Config, fn trialFunc) {
	ctx := context.Background()
	// Warm the encoding cache (and replica pool) outside the timer.
	if _, _, err := fn(ctx, cfg, 1); err != nil {
		b.Fatal(err)
	}
	fastHits := telemetry.Default().Counter("ares.fastpath.hits")
	hits0 := fastHits.Value()
	var seed atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := fn(ctx, cfg, seed.Add(1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "trials/s")
	}
	b.ReportMetric(float64(fastHits.Value()-hits0)/float64(b.N), "fasthit/op")
}

// BenchmarkCampaignTrialThroughput is the headline: Figure 5 campaign
// trials through the replica pool (parallel measurement + fast path).
func BenchmarkCampaignTrialThroughput(b *testing.B) {
	ev := benchMeasured(b)
	benchTrials(b, benchFig5Config(), ev.EvalTrial)
}

// BenchmarkCampaignTrialThroughputSerial is the pre-replica baseline:
// the same concurrent callers, but every measurement funnels through the
// mutex-serialized shared model and allocates a fresh forward pass.
func BenchmarkCampaignTrialThroughputSerial(b *testing.B) {
	ev := benchMeasured(b)
	benchTrials(b, benchFig5Config(), ev.EvalTrialSerial)
}

// BenchmarkCorruptedTrialThroughput is the worst case: every trial
// corrupts weights, so the fast path never fires and each trial pays a
// full (allocation-free, replica-local) inference pass.
func BenchmarkCorruptedTrialThroughput(b *testing.B) {
	ev := benchMeasured(b)
	benchTrials(b, benchDenseFaultConfig(), ev.EvalTrial)
}

// BenchmarkCorruptedTrialThroughputSerial is the locked baseline for the
// worst case.
func BenchmarkCorruptedTrialThroughputSerial(b *testing.B) {
	ev := benchMeasured(b)
	benchTrials(b, benchDenseFaultConfig(), ev.EvalTrialSerial)
}

// BenchmarkForwardAllocFree measures the steady-state forward pass in
// the replica configuration (Workers=1, reused Forwarder). Run with
// -benchmem: the acceptance criterion is 0 allocs/op.
func BenchmarkForwardAllocFree(b *testing.B) {
	ds := train.Synthesize(train.SynthConfig{N: 100, Seed: 1})
	m := dnn.TinyCNN()
	m.InitWeights(1)
	f := dnn.NewForwarder(m)
	f.Workers = 1
	f.Forward(ds.Images) // materialize buffers
	if n := testing.AllocsPerRun(10, func() { f.Forward(ds.Images) }); n != 0 {
		b.Fatalf("steady-state forward pass allocates %v allocs/op, want 0", n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Forward(ds.Images)
	}
}
