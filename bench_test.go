package maxnvm

// The benchmark harness regenerates every table and figure of the paper
// (via internal/exper, shared with cmd/maxnvm) and additionally measures
// the throughput of the core primitives. Run:
//
//	go test -bench=. -benchmem
//
// The first figure benchmark triggers the full design-space exploration
// for all four models; results are cached in the shared environment, so
// subsequent iterations measure the evaluation/rendering path.

import (
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/ares"
	"repro/internal/bitstream"
	"repro/internal/dnn"
	"repro/internal/ecc"
	"repro/internal/envm"
	"repro/internal/exper"
	"repro/internal/nvsim"
	"repro/internal/quant"
	"repro/internal/sparse"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/train"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *exper.Env
)

func env() *exper.Env {
	benchEnvOnce.Do(func() {
		benchEnv = exper.NewEnv(1)
		benchEnv.MaxLayerWeights = 1 << 17
		benchEnv.DamageTrials = 3
	})
	return benchEnv
}

// skipIfShort skips the exploration-scale benchmarks under -short: they
// run full design-space explorations or model training, which the fast
// CI tier (go test -short, make race) must not pay for.
func skipIfShort(b *testing.B) {
	if testing.Short() {
		b.Skip("exploration-scale benchmark skipped in -short mode")
	}
}

var allModels = []string{"LeNet5", "VGG12", "VGG16", "ResNet50"}
var bigModels = []string{"VGG12", "VGG16", "ResNet50"}

// --- Paper tables and figures -----------------------------------------

func BenchmarkFig1ArrayCharacterization(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		env().Fig1(io.Discard)
	}
}

func BenchmarkFig2LevelDistributions(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		env().Fig2(io.Discard)
	}
}

func BenchmarkTable2ModelSizes(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		env().Table2(io.Discard, allModels)
	}
}

func BenchmarkFig5StructureVulnerability(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		if err := env().Fig5(io.Discard, 6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6MinimalCells(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		for _, m := range allModels {
			env().Fig6(io.Discard, m)
		}
	}
}

func BenchmarkFig8AreaEnergy(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		env().Fig8(io.Discard, bigModels)
	}
}

func BenchmarkFig9SystemPerformance(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		env().Fig9(io.Discard)
	}
}

func BenchmarkFig10NonVolatility(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		env().Fig10(io.Discard)
	}
}

func BenchmarkFig11HybridSweep(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		env().Fig11(io.Discard)
	}
}

func BenchmarkTable4OptimalStorage(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		env().Table4(io.Discard, bigModels)
	}
}

func BenchmarkTable5WriteTime(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		env().Table5(io.Discard, bigModels)
	}
}

func BenchmarkHeadlineClaims(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		env().Headlines(io.Discard)
	}
}

func BenchmarkITNMeasurement(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		if err := env().ITN(io.Discard, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPerLayerSelection(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		env().PerLayer(io.Discard, []string{"LeNet5", "VGG12"})
	}
}

func BenchmarkAblationSuite(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		env().Ablations(io.Discard)
	}
}

func BenchmarkWritePathStudy(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		env().WritePath(io.Discard)
	}
}

func BenchmarkRNNReuseStudy(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		env().RNN(io.Discard)
	}
}

// --- Design-choice ablations (DESIGN.md section 5) ---------------------

// BenchmarkAblationOrdering contrasts the paper's "sparse-encode first,
// then maximize bits-per-cell" ordering against the reverse (dense at max
// BPC), reporting cells as the metric.
func BenchmarkAblationOrdering(b *testing.B) {
	skipIfShort(b)
	ex, err := Explore("LeNet5", Options{Seed: 1, DamageTrials: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparseFirst := ex.BestEncoding(CTT, CSR)
		denseMax := ex.BestEncoding(CTT, Dense)
		b.ReportMetric(float64(sparseFirst.TotalCells), "cells-sparse-first")
		b.ReportMetric(float64(denseMax.TotalCells), "cells-dense-max-bpc")
	}
}

// BenchmarkAblationBitmaskProtection contrasts IdxSync against ECC for
// the bitmask structure on the optimistic RRAM.
func BenchmarkAblationBitmaskProtection(b *testing.B) {
	skipIfShort(b)
	ex, err := Explore("VGG12", Options{Seed: 1, DamageTrials: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idxSync := ex.BestEncoding(OptRRAM, BitMaskIdxSync)
		plain := ex.BestEncoding(OptRRAM, BitMask)
		b.ReportMetric(float64(idxSync.TotalCells), "cells-idxsync")
		b.ReportMetric(float64(plain.TotalCells), "cells-plain")
	}
}

// BenchmarkAblationCSRIndexMode contrasts relative column indices
// (narrow, padding entries, cascade-prone) against absolute indices
// (wide, cascade-free): the paper argues absolute indexing costs strictly
// more bits than relative + ECC.
func BenchmarkAblationCSRIndexMode(b *testing.B) {
	cl := benchClustered(128, 512, 0.85, 4, 9)
	code := ecc.NewBlockCode(ares.ECCDataBits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel := sparse.Must(sparse.EncodeCSR(cl.Indices, cl.Rows, cl.Cols, cl.IndexBits,
			sparse.Must(sparse.BestIndexBits(cl.Indices, cl.Rows, cl.Cols, cl.IndexBits))))
		relBits := rel.SizeBits() + code.ParityBits(int(rel.ColIndex.SizeBits()+rel.RowCount.SizeBits()))
		abs := sparse.Must(sparse.EncodeCSR(cl.Indices, cl.Rows, cl.Cols, cl.IndexBits,
			bitstream.BitsFor(cl.Cols-1)))
		b.ReportMetric(float64(relBits), "bits-relative+ecc")
		b.ReportMetric(float64(abs.SizeBits()), "bits-absolute")
	}
}

// --- Primitive throughput benchmarks -----------------------------------

func benchClustered(rows, cols int, sparsity float64, bits int, seed uint64) *quant.Clustered {
	src := stats.NewSource(seed)
	m := tensor.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(src.Gaussian(0, 0.1))
	}
	quant.Prune(m, sparsity, seed)
	return quant.Cluster(m, bits, quant.ClusterOptions{Seed: seed})
}

// BenchmarkInjectMLC3 measures fault-injection throughput through the
// telemetry instrumentation itself: per-op latency goes into a named
// timer histogram, and the reported cells/s and faults/op come from the
// envm.inject.* hot-path counters rather than locals, so the benchmark
// doubles as an end-to-end check that the counters track real work.
func BenchmarkInjectMLC3(b *testing.B) {
	cfg := envm.StoreConfig{Tech: envm.CTT, BPC: 3}
	a := bitstream.New(3 << 20)
	src := stats.NewSource(1)
	reg := telemetry.Default()
	cells := reg.Counter("envm.inject.cells")
	faults := reg.Counter("envm.inject.faults")
	lat := reg.Timer("bench.inject.latency")
	cells0, faults0 := cells.Value(), faults.Value()
	b.SetBytes(3 << 17) // bytes of cell data per op
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		envm.InjectArray(a, cfg, src)
		lat.Since(start)
	}
	b.StopTimer()
	elapsed := b.Elapsed().Seconds()
	if dCells := cells.Value() - cells0; dCells != int64(b.N)<<20 {
		b.Fatalf("envm.inject.cells advanced by %d, want %d", dCells, int64(b.N)<<20)
	} else if elapsed > 0 {
		b.ReportMetric(float64(dCells)/elapsed, "cells/s")
	}
	b.ReportMetric(float64(faults.Value()-faults0)/float64(b.N), "faults/op")
	b.ReportMetric(float64(lat.Hist().Quantile(0.5)), "p50-ns/op")
}

// BenchmarkTelemetryRecordingAllocFree proves the hot-path recording
// primitives stay allocation-free — the property that makes it safe to
// leave them inside InjectArray and the decoders. AllocsPerRun gives an
// exact per-call figure; any nonzero count fails the benchmark.
func BenchmarkTelemetryRecordingAllocFree(b *testing.B) {
	reg := telemetry.Default()
	c := reg.Counter("bench.allocfree.counter")
	h := reg.Histogram("bench.allocfree.hist")
	tm := reg.Timer("bench.allocfree.timer")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		h.Observe(42)
		tm.Observe(time.Microsecond)
	}); n != 0 {
		b.Fatalf("telemetry recording allocates %v allocs/op, want 0", n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkEncodeCSR(b *testing.B) {
	cl := benchClustered(256, 1024, 0.8, 4, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparse.Must(sparse.Encode(sparse.KindCSR, cl.Indices, cl.Rows, cl.Cols, cl.IndexBits))
	}
}

func BenchmarkEncodeBitMask(b *testing.B) {
	cl := benchClustered(256, 1024, 0.8, 4, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparse.Must(sparse.Encode(sparse.KindBitMaskIdxSync, cl.Indices, cl.Rows, cl.Cols, cl.IndexBits))
	}
}

func BenchmarkDecodeBitMask(b *testing.B) {
	cl := benchClustered(256, 1024, 0.8, 4, 4)
	enc := sparse.Must(sparse.Encode(sparse.KindBitMaskIdxSync, cl.Indices, cl.Rows, cl.Cols, cl.IndexBits))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Decode()
	}
}

func BenchmarkECCProtectCorrect(b *testing.B) {
	data := bitstream.New(1 << 16)
	src := stats.NewSource(5)
	for i := 0; i < 1<<16; i++ {
		if src.Bernoulli(0.5) {
			data.SetBit(i, 1)
		}
	}
	code := ecc.NewBlockCode(ares.ECCDataBits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := code.Protect(data)
		p.Correct()
	}
}

func BenchmarkKMeansCluster(b *testing.B) {
	src := stats.NewSource(6)
	m := tensor.NewMatrix(256, 256)
	for i := range m.Data {
		m.Data[i] = float32(src.Gaussian(0, 0.1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quant.Cluster(m, 4, quant.ClusterOptions{Seed: 1})
	}
}

func BenchmarkConvForward(b *testing.B) {
	cs := tensor.ConvShape{InC: 16, OutC: 32, KH: 3, KW: 3, Pad: 1, Stride: 1, InH: 28, InW: 28}
	in := tensor.NewTensor4(4, 16, 28, 28)
	w := tensor.NewMatrix(32, 16*9)
	src := stats.NewSource(7)
	for i := range in.Data {
		in.Data[i] = float32(src.Gaussian(0, 1))
	}
	for i := range w.Data {
		w.Data[i] = float32(src.Gaussian(0, 0.1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Conv2D(in, w, nil, cs)
	}
}

func BenchmarkNVSimCharacterize(b *testing.B) {
	cfg := nvsim.Config{Tech: envm.CTT, BPC: 2, CapacityBits: 12 * 8e6, Target: nvsim.OptReadEDP}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nvsim.Characterize(cfg)
	}
}

func BenchmarkMeasuredInference(b *testing.B) {
	ds := train.Synthesize(train.SynthConfig{N: 100, Seed: 1})
	m := dnn.TinyCNN()
	m.InitWeights(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(ds.Images)
	}
}

func BenchmarkRetentionStudy(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		env().Retention(io.Discard, "VGG12")
	}
}
