package maxnvm

import (
	"sync"
	"testing"

	"repro/internal/sparse"
)

var (
	facadeOnce sync.Once
	facadeEx   *Exploration
	facadeErr  error
)

func getExploration(t *testing.T) *Exploration {
	t.Helper()
	facadeOnce.Do(func() {
		facadeEx, facadeErr = Explore("LeNet5", Options{Seed: 1, DamageTrials: 4})
	})
	if facadeErr != nil {
		t.Fatal(facadeErr)
	}
	return facadeEx
}

func TestExploreUnknownModel(t *testing.T) {
	if _, err := Explore("AlexNet", Options{}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestModelsAndTechnologies(t *testing.T) {
	if len(Models()) != 4 {
		t.Errorf("Models() = %v", Models())
	}
	if len(Technologies()) != 4 {
		t.Errorf("Technologies() = %d entries", len(Technologies()))
	}
}

func TestFacadeBestAndSummary(t *testing.T) {
	ex := getExploration(t)
	best := ex.Best(CTT)
	if !best.Accepted {
		t.Fatalf("no accepted config: %+v", best)
	}
	if best.MaxBPC < 2 {
		t.Errorf("MaxBPC = %d, expected MLC", best.MaxBPC)
	}
	sum := ex.Summary(CTT)
	if sum.Array.AreaMM2 <= 0 {
		t.Error("summary missing array characterization")
	}
	if ex.AreaBenefit(best) < 2 {
		t.Errorf("area benefit %.2f too small", ex.AreaBenefit(best))
	}
}

func TestFacadeBestEncoding(t *testing.T) {
	ex := getExploration(t)
	csr := ex.BestEncoding(CTT, CSR)
	dense := ex.BestEncoding(CTT, Dense)
	if csr.TotalCells >= dense.TotalCells {
		t.Errorf("CSR (%d cells) should beat dense (%d) on a 90%%-sparse model",
			csr.TotalCells, dense.TotalCells)
	}
}

func TestFacadeSystemVsBaseline(t *testing.T) {
	ex := getExploration(t)
	best := ex.Best(CTT)
	onchip := ex.System(NVDLA64, best)
	baseline := ex.Baseline(NVDLA64, best)
	if onchip.EnergyUJ >= baseline.EnergyUJ {
		t.Errorf("on-chip energy %.1f >= DRAM baseline %.1f", onchip.EnergyUJ, baseline.EnergyUJ)
	}
	if onchip.AvgPowerMW >= baseline.AvgPowerMW {
		t.Errorf("on-chip power %.1f >= DRAM baseline %.1f", onchip.AvgPowerMW, baseline.AvgPowerMW)
	}
}

func TestEncodingKindConstants(t *testing.T) {
	if Dense != sparse.KindDense || BitMaskIdxSync != sparse.KindBitMaskIdxSync {
		t.Error("encoding constants drifted from internal definitions")
	}
}
