// Package maxnvm is the public API of the MaxNVM reproduction: a
// principled co-design framework for storing DNN weights in fault-prone
// multi-level-cell embedded non-volatile memories (RRAM and CTT), after
// Pentecost et al., "MaxNVM: Maximizing DNN Storage Density and Inference
// Efficiency with Sparse Encoding and Error Mitigation" (MICRO-52, 2019).
//
// The facade wires together the internal subsystems:
//
//   - model optimization: magnitude pruning + k-means weight clustering
//   - sparse encodings: CSR and the NVDLA BitMask format
//   - error protection: Gray-coded SEC-DED ECC and IdxSync counters
//   - eNVM device models with Gaussian level distributions and
//     measured-style inter-level fault maps
//   - an NVSim-like array characterizer and an NVDLA performance model
//
// Typical use:
//
//	ex, _ := maxnvm.Explore("ResNet50", maxnvm.Options{Seed: 1})
//	best := ex.Best(maxnvm.CTT)                  // optimal storage config
//	sum := ex.Summary(maxnvm.CTT)                // area/latency/energy
//	rep := ex.System(maxnvm.NVDLA1024, best)     // FPS, energy/inference
package maxnvm

import (
	"fmt"

	"repro/internal/ares"
	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/envm"
	"repro/internal/nvdla"
	"repro/internal/nvsim"
	"repro/internal/sparse"
)

// Re-exported domain types. These aliases form the stable public surface
// over the internal packages.
type (
	// Tech is an eNVM technology model.
	Tech = envm.Tech
	// StreamPolicy selects bits-per-cell and ECC for one structure.
	StreamPolicy = ares.StreamPolicy
	// StorageConfig is a complete encoding + per-structure policy.
	StorageConfig = ares.Config
	// Candidate is one evaluated design-space point.
	Candidate = core.Candidate
	// StorageSummary is a Table 4 row: candidate + characterized array.
	StorageSummary = core.StorageSummary
	// ArrayResult is an NVSim-style characterization.
	ArrayResult = nvsim.Result
	// SystemReport is an NVDLA system evaluation.
	SystemReport = nvdla.Report
	// AcceleratorConfig is an NVDLA hardware configuration.
	AcceleratorConfig = nvdla.Config
	// EncodingKind selects a sparse weight format.
	EncodingKind = sparse.Kind
)

// Evaluated technologies (paper Table 4 order) and accelerator configs
// (paper Table 3).
var (
	OptRRAM   = envm.OptRRAM
	CTT       = envm.CTT
	MLCRRAM   = envm.MLCRRAM
	SLCRRAM   = envm.SLCRRAM
	NVDLA64   = nvdla.NVDLA64
	NVDLA1024 = nvdla.NVDLA1024
)

// Encoding kinds.
const (
	Dense          = sparse.KindDense
	CSR            = sparse.KindCSR
	BitMask        = sparse.KindBitMask
	BitMaskIdxSync = sparse.KindBitMaskIdxSync
)

// Technologies returns the four evaluated memory proposals.
func Technologies() []Tech { return envm.Evaluated() }

// LoadTech parses a custom technology definition from JSON (the
// NVMExplorer-style prospective-device workflow); see
// internal/envm/custom.go for the schema and defaults.
var LoadTech = envm.LoadTech

// Models returns the evaluated DNN names (Table 2).
func Models() []string { return append([]string(nil), dnn.ZooNames...) }

// Options tunes an exploration.
type Options struct {
	// Seed drives synthetic weights, pruning, clustering, and fault
	// probing. Explorations are deterministic per seed.
	Seed uint64
	// MaxLayerWeights caps per-layer representations (subsampling very
	// large layers for tractable probing). Zero selects a sensible
	// default: full fidelity below 1M weights per layer.
	MaxLayerWeights int
	// DamageTrials per fault probe (default 6).
	DamageTrials int
}

// Exploration is a prepared model plus its profiled design space.
type Exploration struct {
	model *dnn.Model
	pm    *core.PreparedModel
	ex    *core.Explorer
}

// Explore prepares the named zoo model (prune + cluster per Table 2) and
// profiles every encoding's fault exposure.
func Explore(model string, opt Options) (*Exploration, error) {
	m, ok := dnn.Lookup(model)
	if !ok {
		return nil, fmt.Errorf("maxnvm: unknown model %q (have %v)", model, Models())
	}
	maxW := opt.MaxLayerWeights
	if maxW == 0 {
		maxW = 1 << 20
	}
	pm := core.Prepare(m, core.PrepareOptions{Seed: opt.Seed, MaxLayerWeights: maxW})
	ex := core.NewExplorer(pm, core.ProfileOptions{Seed: opt.Seed + 1, DamageTrials: opt.DamageTrials})
	return &Exploration{model: m, pm: pm, ex: ex}, nil
}

// Model returns the underlying model spec.
func (e *Exploration) Model() *dnn.Model { return e.model }

// Explorer exposes the full design-space API for advanced use.
func (e *Exploration) Explorer() *core.Explorer { return e.ex }

// Prepared exposes the pruned + clustered layers.
func (e *Exploration) Prepared() *core.PreparedModel { return e.pm }

// Best returns the minimal-cell accepted configuration on a technology,
// across all encodings (a Table 4 decision).
func (e *Exploration) Best(tech Tech) Candidate { return e.ex.BestOverall(tech) }

// BestEncoding returns the minimal-cell accepted configuration for one
// specific encoding (a Figure 6 bar).
func (e *Exploration) BestEncoding(tech Tech, kind EncodingKind) Candidate {
	return e.ex.Best(tech, kind)
}

// Summary characterizes the best configuration's memory array
// (read-EDP-optimal, the paper's presentation target).
func (e *Exploration) Summary(tech Tech) StorageSummary {
	return e.ex.Summarize(tech, nvsim.OptReadEDP)
}

// System evaluates the NVDLA accelerator with the candidate's weights
// held entirely on-chip (Figure 7b / Figure 9).
func (e *Exploration) System(cfg AcceleratorConfig, c Candidate) SystemReport {
	sum := e.ex.SummarizeCandidate(c, nvsim.OptReadEDP)
	work := nvdla.Workload(e.model, e.ex.EncodedLayerBits(c))
	return nvdla.Run(cfg, work, nvdla.ENVMWeights{R: sum.Array})
}

// Baseline evaluates the DRAM-backed NVDLA baseline (Figure 7a) with the
// same encoded weight traffic.
func (e *Exploration) Baseline(cfg AcceleratorConfig, c Candidate) SystemReport {
	work := nvdla.Workload(e.model, e.ex.EncodedLayerBits(c))
	return nvdla.Run(cfg, work, nvdla.DRAMWeights{D: cfg.DRAM})
}

// AreaBenefit returns the cell-count reduction of a candidate versus the
// dense SLC baseline (the abstract's headline metric, up to 29x).
func (e *Exploration) AreaBenefit(c Candidate) float64 { return e.ex.AreaBenefit(c) }
