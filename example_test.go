package maxnvm_test

import (
	"fmt"
	"log"

	maxnvm "repro"
)

// Example demonstrates the core co-design loop: prepare a model, find the
// minimal-cell storage configuration on a technology, and read out the
// characterized array. (No Output comment: results depend on calibration
// constants; see EXPERIMENTS.md for a recorded run.)
func Example() {
	ex, err := maxnvm.Explore("LeNet5", maxnvm.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	best := ex.Best(maxnvm.CTT)
	sum := ex.Summary(maxnvm.CTT)
	fmt.Printf("%s: %s, %d cells max %d bits/cell, %.3f mm2\n",
		best.Model, best.Label(), best.TotalCells, best.MaxBPC, sum.Array.AreaMM2)
}

// Example_isolation shows the Figure 5 experiment style: evaluating a
// single structure's vulnerability while all other structures are
// perfect.
func Example_isolation() {
	ex, err := maxnvm.Explore("LeNet5", maxnvm.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	// Compare CSR with raw MLC3 structures vs ECC-protected ones.
	raw := ex.Explorer().Evaluate(maxnvm.CTT, maxnvm.CSR, map[string]maxnvm.StreamPolicy{
		"values": {BPC: 3}, "colidx": {BPC: 3}, "rowcount": {BPC: 3},
	})
	protected := ex.Explorer().Evaluate(maxnvm.CTT, maxnvm.CSR, map[string]maxnvm.StreamPolicy{
		"values": {BPC: 3}, "colidx": {BPC: 3, ECC: true}, "rowcount": {BPC: 3, ECC: true},
	})
	fmt.Printf("raw MLC3 delta %.4f (accepted=%v), protected delta %.4f (accepted=%v)\n",
		raw.DeltaErr, raw.Accepted, protected.DeltaErr, protected.Accepted)
}
